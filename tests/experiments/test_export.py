"""Tests for figure CSV export and the CLI plumbing."""

import csv
import io

import pytest

from repro.experiments import FigureResult


@pytest.fixture
def result():
    return FigureResult(
        figure="Figure 2", title="demo", headers=["size", "a", "b"],
        rows=[[4, 1.5, 2.5], [8, 3.0, 4.0]],
        series={"a": [(4, 1.5), (8, 3.0)]})


def test_to_csv_roundtrip(result):
    text = result.to_csv()
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == ["size", "a", "b"]
    assert rows[1] == ["4", "1.5", "2.5"]
    assert len(rows) == 3


def test_save_csv_names_file_after_figure(result, tmp_path):
    path = result.save_csv(tmp_path)
    assert path.endswith("fig2.csv")
    content = open(path).read()
    assert content.startswith("size,a,b")


def test_save_csv_creates_directory(result, tmp_path):
    target = tmp_path / "nested" / "out"
    path = result.save_csv(target)
    assert (target / "fig2.csv").exists()
    assert str(target) in path


def test_extension_figure_csv_name(tmp_path):
    ext = FigureResult(figure="Extension A", title="t",
                       headers=["x"], rows=[[1]])
    path = ext.save_csv(tmp_path)
    assert path.endswith("extensiona.csv")
