"""Overload scenario builders and the end-to-end accessor plumbing."""

import dataclasses

import pytest

from repro.api import run_experiment
from repro.experiments.overload import (ADMISSION_INBOX, HOTSPOT_INBOX,
                                        NOMINAL_CAPACITY_OPS_S,
                                        OVERLOAD_N_MDS, PER_USER_OPS_S,
                                        SLO_LATENCY_S, hotspot_config,
                                        overload_config)
from repro.experiments.runner import run_steady_state
from repro.experiments.workload import OpenLoopSpec


class TestOverloadConfig:
    def test_user_population_derives_the_offered_rate(self):
        cfg = overload_config(1.0)
        spec = cfg.workload
        assert isinstance(spec, OpenLoopSpec)
        assert spec.implied_users == round(
            NOMINAL_CAPACITY_OPS_S / PER_USER_OPS_S)
        assert spec.offered_rate_ops_per_s == pytest.approx(
            NOMINAL_CAPACITY_OPS_S)
        assert spec.slo_latency_s == SLO_LATENCY_S

    def test_admission_toggle_bounds_the_inbox(self):
        assert overload_config(
            1.0, admission=True).params.inbox_capacity == ADMISSION_INBOX
        assert overload_config(
            1.0, admission=False).params.inbox_capacity is None

    def test_proxy_toggle(self):
        assert overload_config(1.0, proxy=False).proxy is None
        assert overload_config(1.0, proxy=True).proxy is not None

    def test_cluster_size_and_strategy(self):
        cfg = overload_config(0.8, strategy="StaticSubtree")
        assert cfg.n_mds == OVERLOAD_N_MDS
        assert cfg.strategy == "StaticSubtree"

    def test_overrides_win(self):
        assert overload_config(1.0, seed=9).seed == 9
        assert overload_config(1.0, scale=0.25).scale == 0.25


class TestHotspotConfig:
    def test_traffic_control_toggle(self):
        assert hotspot_config(tc=True, proxy=False).params.traffic_control
        assert not hotspot_config(tc=False,
                                  proxy=True).params.traffic_control

    def test_hotspot_overlay_is_on(self):
        cfg = hotspot_config(tc=False, proxy=False)
        assert cfg.workload.hotspot_prob > 0
        assert cfg.workload.arrival == "bursty"
        assert cfg.params.inbox_capacity == HOTSPOT_INBOX

    def test_variants_share_seed_and_load(self):
        a = hotspot_config(tc=True, proxy=False)
        b = hotspot_config(tc=False, proxy=True)
        assert a.seed == b.seed
        assert a.workload.offered_rate_ops_per_s == pytest.approx(
            b.workload.offered_rate_ops_per_s)


def tiny_overload(**kw):
    base = dict(scale=0.2, warmup_s=0.2, duration_s=0.5,
                cache_capacity_per_mds=2000)
    base.update(kw)
    spec = OpenLoopSpec(kind="general", rate_ops_per_s=6000.0, sources=16,
                        slo_latency_s=0.010)
    return dataclasses.replace(
        overload_config(1.0, **base),
        workload=spec, files_per_user=20)


class TestEndToEnd:
    def test_run_experiment_exposes_overload_accessors(self):
        res = run_experiment(tiny_overload())
        assert res.offered_ops > 0
        assert res.dropped_ops >= 0
        assert res.slo_violations >= 0
        assert res.goodput_ops_per_s > 0
        assert res.offered_ops == res.summary.offered_ops

    def test_run_steady_state_carries_overload_fields(self):
        res = run_steady_state(tiny_overload())
        assert res.offered_ops > 0
        assert res.goodput_ops_per_s > 0
        window = res.config.measure_window
        good = res.goodput_ops_per_s * (window[1] - window[0])
        assert good <= res.offered_ops

    def test_closed_loop_summary_format_omits_overload_rows(self):
        from repro.experiments import (ClosedLoopSpec, ExperimentConfig,
                                       build_simulation)
        cfg = ExperimentConfig(n_mds=3, scale=0.2, warmup_s=0.2,
                               duration_s=0.5,
                               workload=ClosedLoopSpec())
        sim = build_simulation(cfg)
        sim.run_to(cfg.run_until_s)
        text = sim.summary().format()
        assert "offered ops" not in text
        assert "dropped ops" not in text

    def test_open_loop_summary_format_shows_overload_rows(self):
        from repro.experiments import build_simulation
        cfg = tiny_overload()
        sim = build_simulation(cfg)
        sim.run_to(cfg.run_until_s)
        text = sim.summary().format()
        assert "offered ops" in text
        assert "goodput (ops/s)" in text
