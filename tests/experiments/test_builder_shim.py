"""The deprecated ``repro.experiments.builder`` shim warns and forwards."""

import importlib
import sys
import warnings

import pytest


def _fresh_import():
    sys.modules.pop("repro.experiments.builder", None)
    return importlib.import_module


def test_shim_emits_deprecation_warning():
    imp = _fresh_import()
    with pytest.warns(DeprecationWarning,
                      match="repro.experiments.builder is deprecated"):
        imp("repro.experiments.builder")


def test_shim_forwards_to_build_module():
    imp = _fresh_import()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        legacy = imp("repro.experiments.builder")
    from repro.experiments import _build
    assert legacy.Simulation is _build.Simulation
    assert legacy.build_simulation is _build.build_simulation
    assert legacy.__all__ == ["Simulation", "build_simulation"]


def test_shim_import_is_idempotent():
    imp = _fresh_import()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        first = imp("repro.experiments.builder")
    # a second import hits sys.modules: no new warning, same module object
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        second = importlib.import_module("repro.experiments.builder")
    assert second is first
