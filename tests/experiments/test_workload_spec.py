"""The typed WorkloadSpec API and the legacy flat-knob shim."""

import warnings

import pytest

from repro.experiments import (ClosedLoopSpec, ExperimentConfig, OpenLoopSpec,
                               build_simulation, normalize_workload)
from repro.experiments import workload as workload_mod


def small(**kw):
    return ExperimentConfig(n_mds=3, scale=0.2, warmup_s=0.2,
                            duration_s=0.5, **kw)


def run_summary(cfg):
    sim = build_simulation(cfg)
    sim.run_to(cfg.run_until_s)
    return repr(sim.summary())


class TestLegacyShim:
    def test_legacy_string_equivalent_to_explicit_spec(self):
        legacy = small(workload="general", think_time_s=0.004,
                       workload_args={"mkdir_bias": 0.2})
        typed = small(workload=ClosedLoopSpec(
            kind="general", think_time_s=0.004,
            args={"mkdir_bias": 0.2}))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert run_summary(legacy) == run_summary(typed)

    def test_legacy_string_warns_once_per_process(self, monkeypatch):
        monkeypatch.setattr(workload_mod, "_legacy_warned", False)
        cfg = small(workload="general")
        with pytest.warns(DeprecationWarning,
                          match="flat knobs .* deprecated"):
            cfg.workload_spec()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            cfg.workload_spec()  # second call: no warning

    def test_typed_spec_never_warns(self, monkeypatch):
        monkeypatch.setattr(workload_mod, "_legacy_warned", False)
        cfg = small(workload=ClosedLoopSpec())
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            cfg.workload_spec()

    def test_normalize_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="workload must be"):
            normalize_workload(123, think_time_s=0.006,
                               workload_args={}, op_weights=None)


class TestSpecValidation:
    def test_closed_loop_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            ClosedLoopSpec(kind="bogus").validate()

    def test_closed_loop_rejects_nonpositive_think_time(self):
        with pytest.raises(ValueError, match="think_time_s"):
            ClosedLoopSpec(think_time_s=0.0).validate()

    def test_open_loop_needs_a_rate(self):
        with pytest.raises(ValueError, match="rate_ops_per_s or"):
            OpenLoopSpec().validate()

    def test_open_loop_rejects_unknown_arrival(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            OpenLoopSpec(rate_ops_per_s=100.0, arrival="fractal").validate()

    def test_open_loop_rejects_shallow_pareto_tail(self):
        with pytest.raises(ValueError, match="burst_alpha"):
            OpenLoopSpec(rate_ops_per_s=100.0, burst_alpha=1.0).validate()

    def test_open_loop_rejects_bad_hotspot_prob(self):
        with pytest.raises(ValueError, match="hotspot_prob"):
            OpenLoopSpec(rate_ops_per_s=100.0, hotspot_prob=1.5).validate()


class TestSpecDerivations:
    def test_rate_from_nominal_users(self):
        spec = OpenLoopSpec(nominal_users=2_000_000,
                            per_user_ops_per_s=0.008)
        assert spec.offered_rate_ops_per_s == pytest.approx(16_000.0)
        assert spec.implied_users == 2_000_000

    def test_users_implied_from_rate(self):
        spec = OpenLoopSpec(rate_ops_per_s=5000.0, per_user_ops_per_s=0.01)
        assert spec.implied_users == 500_000

    def test_sources_default_to_client_population(self):
        assert OpenLoopSpec(rate_ops_per_s=1.0).resolved_sources(24) == 24
        assert OpenLoopSpec(rate_ops_per_s=1.0,
                            sources=8).resolved_sources(24) == 8
