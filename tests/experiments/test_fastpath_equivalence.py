"""The request-path fast lane must be invisible to results.

``REPRO_FASTPATH=0`` (reference walks, no memo, no authority cache) and
``REPRO_FASTPATH=1`` must produce bit-identical summaries for the same
seed: the fast lane is pure memoisation, never a behaviour change.  The
switch is read at wiring time, so each mode gets its own build.

The equivalence contract is enforced on **both** kernel backends: every
fixed-seed comparison below is parametrized over ``REPRO_KERNEL`` so the
compiled calendar has to reproduce the reference bit-for-bit in each
fast-lane mode (cleanly skipped where the extension is not built).
"""

import pytest

from repro._fastpath import FASTPATH_ENV, fastpath_enabled
from repro.api import build_simulation, scaling_config
from repro.sim.backend import KERNEL_ENV, backend_of, compiled_viable

KERNELS = [
    pytest.param("reference", id="reference"),
    pytest.param("compiled", id="compiled",
                 marks=pytest.mark.skipif(
                     not compiled_viable(),
                     reason="compiled kernel extension not built "
                            "(python tools/build_kernel.py)")),
]


def _summary_for(monkeypatch, fastpath: bool, kernel: str = "reference"):
    monkeypatch.setenv(FASTPATH_ENV, "1" if fastpath else "0")
    monkeypatch.setenv(KERNEL_ENV, kernel)
    assert fastpath_enabled() is fastpath
    cfg = scaling_config("DynamicSubtree", 4, 0.1, seed=42)
    sim = build_simulation(cfg)
    assert backend_of(sim.env) == kernel
    sim.run_to(cfg.run_until_s)
    return sim


@pytest.mark.parametrize("kernel", KERNELS)
def test_fixed_seed_summaries_identical(monkeypatch, kernel):
    off = _summary_for(monkeypatch, False, kernel)
    on = _summary_for(monkeypatch, True, kernel)
    assert repr(off.summary()) == repr(on.summary())


def test_fastpath_wiring_follows_env(monkeypatch):
    off = _summary_for(monkeypatch, False)
    assert off.cluster.ns.resolution_memo is None
    on = _summary_for(monkeypatch, True)
    memo = on.cluster.ns.resolution_memo
    assert memo is not None
    assert memo.hits > 0  # the run actually exercised the fast lane
    memo.verify_invariants()


@pytest.mark.parametrize("token,expected", [
    ("0", False), ("off", False), ("FALSE", False), ("no", False),
    ("1", True), ("on", True), ("anything", True),
])
def test_fastpath_env_tokens(monkeypatch, token, expected):
    monkeypatch.setenv(FASTPATH_ENV, token)
    assert fastpath_enabled() is expected


def test_fastpath_defaults_on(monkeypatch):
    monkeypatch.delenv(FASTPATH_ENV, raising=False)
    assert fastpath_enabled() is True


@pytest.mark.parametrize("kernel", KERNELS)
def test_kernel_counters_prove_event_elision(monkeypatch, kernel):
    """The fast lane's win is visible in the kernel counters: fewer
    calendar events for the same simulated work, with every elision
    accounted as a fast resume and the freelists actually reused."""
    off = _summary_for(monkeypatch, False, kernel).env.kernel_stats()
    on = _summary_for(monkeypatch, True, kernel).env.kernel_stats()
    assert off["fastlane"] is False and on["fastlane"] is True
    assert off["fast_resumes"] == 0
    assert on["fast_resumes"] > 0
    assert on["events_scheduled"] < off["events_scheduled"]
    assert on["pool_reuse_rate"] > 0.5


def test_summary_carries_kernel_counters_outside_equivalence(monkeypatch):
    """``summary().kernel`` exposes the counters, but stays out of the
    repr/equality contract — the modes differ there by design."""
    off = _summary_for(monkeypatch, False).summary()
    on = _summary_for(monkeypatch, True).summary()
    assert on.kernel is not None and off.kernel is not None
    assert on.kernel["fast_resumes"] > 0
    assert on.kernel != off.kernel
    assert "kernel" not in repr(on)
    assert repr(off) == repr(on)


@pytest.mark.skipif(not compiled_viable(),
                    reason="compiled kernel extension not built")
@pytest.mark.parametrize("fastpath", [False, True],
                         ids=["fastpath-off", "fastpath-on"])
def test_backends_bit_identical_per_fastpath_mode(monkeypatch, fastpath):
    """The acceptance criterion of the backend seam: for a fixed seed the
    compiled calendar's summary repr equals the reference's, in both
    fast-lane modes."""
    ref = _summary_for(monkeypatch, fastpath, "reference")
    com = _summary_for(monkeypatch, fastpath, "compiled")
    ref_summary, com_summary = ref.summary(), com.summary()
    assert repr(ref_summary) == repr(com_summary)
    assert ref_summary == com_summary
    # even the execution counters agree — the C kernel schedules exactly
    # the events the reference does
    ref_stats = ref.env.kernel_stats()
    com_stats = com.env.kernel_stats()
    assert ref_stats["events_scheduled"] == com_stats["events_scheduled"]
    assert ref_stats["fast_resumes"] == com_stats["fast_resumes"]
    # provenance travels on the summary, outside the equality contract
    assert ref_summary.kernel["kernel_backend"] == "reference"
    assert com_summary.kernel["kernel_backend"] == "compiled"
