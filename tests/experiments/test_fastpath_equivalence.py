"""The request-path fast lane must be invisible to results.

``REPRO_FASTPATH=0`` (reference walks, no memo, no authority cache) and
``REPRO_FASTPATH=1`` must produce bit-identical summaries for the same
seed: the fast lane is pure memoisation, never a behaviour change.  The
switch is read at wiring time, so each mode gets its own build.
"""

import pytest

from repro._fastpath import FASTPATH_ENV, fastpath_enabled
from repro.api import build_simulation, scaling_config


def _summary_for(monkeypatch, fastpath: bool):
    monkeypatch.setenv(FASTPATH_ENV, "1" if fastpath else "0")
    assert fastpath_enabled() is fastpath
    cfg = scaling_config("DynamicSubtree", 4, 0.1, seed=42)
    sim = build_simulation(cfg)
    sim.run_to(cfg.run_until_s)
    return sim

def test_fixed_seed_summaries_identical(monkeypatch):
    off = _summary_for(monkeypatch, False)
    on = _summary_for(monkeypatch, True)
    assert repr(off.summary()) == repr(on.summary())


def test_fastpath_wiring_follows_env(monkeypatch):
    off = _summary_for(monkeypatch, False)
    assert off.cluster.ns.resolution_memo is None
    on = _summary_for(monkeypatch, True)
    memo = on.cluster.ns.resolution_memo
    assert memo is not None
    assert memo.hits > 0  # the run actually exercised the fast lane
    memo.verify_invariants()


@pytest.mark.parametrize("token,expected", [
    ("0", False), ("off", False), ("FALSE", False), ("no", False),
    ("1", True), ("on", True), ("anything", True),
])
def test_fastpath_env_tokens(monkeypatch, token, expected):
    monkeypatch.setenv(FASTPATH_ENV, token)
    assert fastpath_enabled() is expected


def test_fastpath_defaults_on(monkeypatch):
    monkeypatch.delenv(FASTPATH_ENV, raising=False)
    assert fastpath_enabled() is True


def test_kernel_counters_prove_event_elision(monkeypatch):
    """The fast lane's win is visible in the kernel counters: fewer
    calendar events for the same simulated work, with every elision
    accounted as a fast resume and the freelists actually reused."""
    off = _summary_for(monkeypatch, False).env.kernel_stats()
    on = _summary_for(monkeypatch, True).env.kernel_stats()
    assert off["fastlane"] is False and on["fastlane"] is True
    assert off["fast_resumes"] == 0
    assert on["fast_resumes"] > 0
    assert on["events_scheduled"] < off["events_scheduled"]
    assert on["pool_reuse_rate"] > 0.5


def test_summary_carries_kernel_counters_outside_equivalence(monkeypatch):
    """``summary().kernel`` exposes the counters, but stays out of the
    repr/equality contract — the modes differ there by design."""
    off = _summary_for(monkeypatch, False).summary()
    on = _summary_for(monkeypatch, True).summary()
    assert on.kernel is not None and off.kernel is not None
    assert on.kernel["fast_resumes"] > 0
    assert on.kernel != off.kernel
    assert "kernel" not in repr(on)
    assert repr(off) == repr(on)
