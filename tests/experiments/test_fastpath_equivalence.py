"""The request-path fast lane must be invisible to results.

``REPRO_FASTPATH=0`` (reference walks, no memo, no authority cache) and
``REPRO_FASTPATH=1`` must produce bit-identical summaries for the same
seed: the fast lane is pure memoisation, never a behaviour change.  The
switch is read at wiring time, so each mode gets its own build.
"""

import pytest

from repro._fastpath import FASTPATH_ENV, fastpath_enabled
from repro.api import build_simulation, scaling_config


def _summary_for(monkeypatch, fastpath: bool):
    monkeypatch.setenv(FASTPATH_ENV, "1" if fastpath else "0")
    assert fastpath_enabled() is fastpath
    cfg = scaling_config("DynamicSubtree", 4, 0.1, seed=42)
    sim = build_simulation(cfg)
    sim.run_to(cfg.run_until_s)
    return sim

def test_fixed_seed_summaries_identical(monkeypatch):
    off = _summary_for(monkeypatch, False)
    on = _summary_for(monkeypatch, True)
    assert repr(off.summary()) == repr(on.summary())


def test_fastpath_wiring_follows_env(monkeypatch):
    off = _summary_for(monkeypatch, False)
    assert off.cluster.ns.resolution_memo is None
    on = _summary_for(monkeypatch, True)
    memo = on.cluster.ns.resolution_memo
    assert memo is not None
    assert memo.hits > 0  # the run actually exercised the fast lane
    memo.verify_invariants()


@pytest.mark.parametrize("token,expected", [
    ("0", False), ("off", False), ("FALSE", False), ("no", False),
    ("1", True), ("on", True), ("anything", True),
])
def test_fastpath_env_tokens(monkeypatch, token, expected):
    monkeypatch.setenv(FASTPATH_ENV, token)
    assert fastpath_enabled() is expected


def test_fastpath_defaults_on(monkeypatch):
    monkeypatch.delenv(FASTPATH_ENV, raising=False)
    assert fastpath_enabled() is True
