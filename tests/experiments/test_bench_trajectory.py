"""The bench tool's baseline/trajectory bookkeeping (no timing involved).

``tools/bench_request_path.py`` compares each run against the previously
*committed* report instead of a constant frozen in the source, and keeps a
``trajectory`` of recorded rates across PRs.  These tests pin the pure
helpers that implement that: prior-report loading, baseline extraction
(with the pre-fast-lane fallback), and trajectory carry-forward.
"""

import importlib.util
import json
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def _load_bench():
    spec = importlib.util.spec_from_file_location(
        "bench_request_path", REPO / "tools" / "bench_request_path.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_missing_or_garbage_prior_report(tmp_path):
    bench = _load_bench()
    assert bench.load_prior_report(str(tmp_path / "nope.json")) is None
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    assert bench.load_prior_report(str(bad)) is None


def test_baseline_falls_back_without_prior():
    bench = _load_bench()
    assert bench.baseline_from_prior(None) == \
        bench.FALLBACK_BASELINE_SIM_OPS_PER_WALL_S
    assert bench.baseline_from_prior({}) == \
        bench.FALLBACK_BASELINE_SIM_OPS_PER_WALL_S
    assert bench.baseline_from_prior({"fastpath_on": {}}) == \
        bench.FALLBACK_BASELINE_SIM_OPS_PER_WALL_S


def test_baseline_reads_prior_fastpath_on_rate():
    bench = _load_bench()
    prior = {"fastpath_on": {"sim_ops_per_wall_s": 21990.6}}
    assert bench.baseline_from_prior(prior) == 21990.6


def test_trajectory_seeded_from_pre_trajectory_report():
    """A report written before trajectory support contributes its own
    headline numbers as the first entry."""
    bench = _load_bench()
    prior = {
        "timestamp": "2026-08-06T07:38:01",
        "fastpath_off": {"sim_ops_per_wall_s": 19174.5},
        "fastpath_on": {"sim_ops_per_wall_s": 21990.6},
        "speedup_on_vs_off": 1.147,
        "quick": False,
    }
    trajectory = bench.trajectory_from_prior(prior)
    assert trajectory == [{
        "timestamp": "2026-08-06T07:38:01",
        "fastpath_off_ops_per_wall_s": 19174.5,
        "fastpath_on_ops_per_wall_s": 21990.6,
        "speedup_on_vs_off": 1.147,
        "quick": False,
    }]


def test_trajectory_carries_forward_and_copies():
    bench = _load_bench()
    existing = [{"timestamp": "t0"}, {"timestamp": "t1"}]
    prior = {"trajectory": existing}
    trajectory = bench.trajectory_from_prior(prior)
    assert trajectory == existing
    trajectory.append({"timestamp": "t2"})  # must not alias the prior list
    assert len(existing) == 2
    assert bench.trajectory_from_prior(None) == []


def test_committed_report_is_a_valid_prior():
    """The report committed at the repo root must parse and provide a
    baseline — the regression check in CI depends on it."""
    bench = _load_bench()
    committed = REPO / "BENCH_request_path.json"
    prior = bench.load_prior_report(str(committed))
    assert prior is not None
    assert bench.baseline_from_prior(prior) > 0
    assert bench.trajectory_from_prior(prior)  # at least one entry
