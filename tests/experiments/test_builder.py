"""Tests for simulation construction from configs."""

import pytest

from repro.clients import (FlashCrowdWorkload, GeneralWorkload,
                           ScientificWorkload, ShiftingWorkload)
from repro.experiments import ExperimentConfig, build_simulation
from repro.experiments._build import (_flash_target, _make_workload,
                                      _size_cache)
from repro.namespace import path as pathmod


def small(workload="general", **kw):
    return ExperimentConfig(n_mds=3, scale=0.2, workload=workload,
                            warmup_s=0.2, duration_s=0.5, **kw)


def test_builds_all_components():
    sim = build_simulation(small())
    assert sim.cluster.n_mds == 3
    assert len(sim.clients) == small().n_clients
    assert sim.total_metadata == len(sim.ns)
    assert isinstance(sim.workload, GeneralWorkload)


def test_same_seed_same_namespace():
    a = build_simulation(small(seed=5))
    b = build_simulation(small(seed=5))
    assert len(a.ns) == len(b.ns)


def test_cache_fraction_sizing():
    cfg = small(cache_fraction=0.1, cache_capacity_per_mds=None)
    sim = build_simulation(cfg)
    expected = max(16, int(0.1 * len(sim.ns)))
    assert sim.cluster.params.cache_capacity == expected


def test_cache_absolute_sizing():
    cfg = small(cache_capacity_per_mds=123)
    sim = build_simulation(cfg)
    assert sim.cluster.params.cache_capacity == 123


def test_workload_kinds():
    assert isinstance(build_simulation(small("scaling")).workload,
                      GeneralWorkload)
    assert isinstance(build_simulation(small("shifting")).workload,
                      ShiftingWorkload)
    assert isinstance(build_simulation(small("scientific")).workload,
                      ScientificWorkload)
    assert isinstance(build_simulation(small("flash")).workload,
                      FlashCrowdWorkload)


def test_unknown_workload_rejected():
    with pytest.raises(ValueError, match="unknown workload"):
        build_simulation(small("nope"))


def test_make_workload_rejects_unknown_kind_directly():
    sim = build_simulation(small())
    cfg = small().replace(workload="bogus")
    with pytest.raises(ValueError, match="unknown workload kind 'bogus'"):
        _make_workload(cfg, cfg.workload_spec(), sim.ns, sim.snapshot)


class TestSizeCache:
    def test_fraction_takes_precedence_over_absolute(self):
        cfg = small(cache_fraction=0.5, cache_capacity_per_mds=7)
        params = _size_cache(cfg, total_metadata=1000)
        assert params.cache_capacity == 500  # fraction wins

    def test_fraction_applies_floor_of_16(self):
        cfg = small(cache_fraction=0.001, cache_capacity_per_mds=None)
        params = _size_cache(cfg, total_metadata=100)
        assert params.cache_capacity == 16

    def test_absolute_capacity_used_when_no_fraction(self):
        cfg = small(cache_fraction=None, cache_capacity_per_mds=77)
        params = _size_cache(cfg, total_metadata=10_000)
        assert params.cache_capacity == 77
        assert params.journal_capacity == 77

    def test_neither_set_returns_params_untouched(self):
        cfg = small(cache_fraction=None, cache_capacity_per_mds=None)
        assert _size_cache(cfg, total_metadata=10_000) is cfg.params


class TestFlashTarget:
    def test_picks_lexicographically_last_file_child(self):
        sim = build_simulation(small("flash"))
        root = sim.snapshot.user_roots[-1]
        node = sim.ns.resolve(root)
        file_names = sorted(
            name for name, ino in node.children.items()
            if sim.ns.inode(ino).is_file)
        assert file_names, "fixture root should have file children"
        expected = pathmod.join(root, file_names[-1])
        assert _flash_target(sim.ns, sim.snapshot) == expected

    def test_choice_ignores_dict_insertion_order(self):
        # reversing children's insertion order must not change the target
        sim = build_simulation(small("flash"))
        root = sim.snapshot.user_roots[-1]
        node = sim.ns.resolve(root)
        before = _flash_target(sim.ns, sim.snapshot)
        items = list(node.children.items())
        node.children.clear()
        node.children.update(reversed(items))
        assert _flash_target(sim.ns, sim.snapshot) == before

    def test_creates_synthetic_file_when_root_has_none(self):
        sim = build_simulation(small())
        root = sim.snapshot.user_roots[-1]
        node = sim.ns.resolve(root)
        doomed = [name for name, ino in node.children.items()
                  if sim.ns.inode(ino).is_file]
        for name in doomed:
            sim.ns.unlink(pathmod.join(root, name))
        target = _flash_target(sim.ns, sim.snapshot)
        assert target == pathmod.join(root, "hotfile.dat")
        assert sim.ns.resolve(target).is_file


def test_shifting_victims_belong_to_victim_node():
    cfg = small("shifting", workload_args={"victim_node": 1,
                                           "shift_time_s": 0.1})
    sim = build_simulation(cfg)
    wl = sim.workload
    for root in wl.victim_roots:
        ino = sim.ns.resolve(root).ino
        assert sim.cluster.strategy.authority_of_ino(ino) == 1


def test_flash_target_is_existing_file():
    sim = build_simulation(small("flash"))
    target = sim.workload.target
    assert sim.ns.resolve(target).is_file


def test_simulation_runs():
    sim = build_simulation(small())
    sim.run_to(cfg_t := small().run_until_s)
    assert sim.env.now == cfg_t
    assert sum(c.stats.ops_completed for c in sim.clients) > 0
