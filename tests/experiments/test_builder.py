"""Tests for simulation construction from configs."""

import pytest

from repro.clients import (FlashCrowdWorkload, GeneralWorkload,
                           ScientificWorkload, ShiftingWorkload)
from repro.experiments import ExperimentConfig, build_simulation


def small(workload="general", **kw):
    return ExperimentConfig(n_mds=3, scale=0.2, workload=workload,
                            warmup_s=0.2, duration_s=0.5, **kw)


def test_builds_all_components():
    sim = build_simulation(small())
    assert sim.cluster.n_mds == 3
    assert len(sim.clients) == small().n_clients
    assert sim.total_metadata == len(sim.ns)
    assert isinstance(sim.workload, GeneralWorkload)


def test_same_seed_same_namespace():
    a = build_simulation(small(seed=5))
    b = build_simulation(small(seed=5))
    assert len(a.ns) == len(b.ns)


def test_cache_fraction_sizing():
    cfg = small(cache_fraction=0.1, cache_capacity_per_mds=None)
    sim = build_simulation(cfg)
    expected = max(16, int(0.1 * len(sim.ns)))
    assert sim.cluster.params.cache_capacity == expected


def test_cache_absolute_sizing():
    cfg = small(cache_capacity_per_mds=123)
    sim = build_simulation(cfg)
    assert sim.cluster.params.cache_capacity == 123


def test_workload_kinds():
    assert isinstance(build_simulation(small("scaling")).workload,
                      GeneralWorkload)
    assert isinstance(build_simulation(small("shifting")).workload,
                      ShiftingWorkload)
    assert isinstance(build_simulation(small("scientific")).workload,
                      ScientificWorkload)
    assert isinstance(build_simulation(small("flash")).workload,
                      FlashCrowdWorkload)


def test_unknown_workload_rejected():
    with pytest.raises(ValueError, match="unknown workload"):
        build_simulation(small("nope"))


def test_shifting_victims_belong_to_victim_node():
    cfg = small("shifting", workload_args={"victim_node": 1,
                                           "shift_time_s": 0.1})
    sim = build_simulation(cfg)
    wl = sim.workload
    for root in wl.victim_roots:
        ino = sim.ns.resolve(root).ino
        assert sim.cluster.strategy.authority_of_ino(ino) == 1


def test_flash_target_is_existing_file():
    sim = build_simulation(small("flash"))
    target = sim.workload.target
    assert sim.ns.resolve(target).is_file


def test_simulation_runs():
    sim = build_simulation(small())
    sim.run_to(cfg_t := small().run_until_s)
    assert sim.env.now == cfg_t
    assert sum(c.stats.ops_completed for c in sim.clients) > 0
