"""Tests for experiment configuration scaling rules."""

import pytest

from repro.experiments import ExperimentConfig, env_scale


def test_defaults_are_consistent():
    cfg = ExperimentConfig()
    assert cfg.n_users == cfg.users_per_mds * cfg.n_mds
    assert cfg.n_clients == cfg.clients_per_mds * cfg.n_mds
    assert cfg.run_until_s > cfg.warmup_s


def test_scale_multiplies_population():
    base = ExperimentConfig(scale=1.0)
    half = ExperimentConfig(scale=0.5)
    assert half.n_users == base.n_users // 2
    assert half.n_clients == base.n_clients // 2
    assert half.run_until_s < base.run_until_s


def test_cluster_size_scales_system():
    small = ExperimentConfig(n_mds=4)
    large = ExperimentConfig(n_mds=8)
    assert large.n_users == 2 * small.n_users
    assert large.n_clients == 2 * small.n_clients


def test_minimums_enforced():
    tiny = ExperimentConfig(scale=0.001)
    assert tiny.n_users >= 1
    assert tiny.n_clients >= 1
    assert tiny.n_files_per_user >= 5


def test_replace_returns_new_config():
    cfg = ExperimentConfig()
    other = cfg.replace(strategy="FileHash")
    assert other.strategy == "FileHash"
    assert cfg.strategy == "DynamicSubtree"


def test_measure_window():
    cfg = ExperimentConfig(warmup_s=2.0, duration_s=4.0, scale=1.0)
    t0, t1 = cfg.measure_window
    assert t0 == 2.0
    assert t1 == 6.0


def test_env_scale_default(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert env_scale(0.7) == 0.7


def test_env_scale_reads_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "1.5")
    assert env_scale() == 1.5


def test_env_scale_rejects_nonpositive(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0")
    with pytest.raises(ValueError):
        env_scale()
