"""End-to-end test of the ``python -m repro.experiments`` CLI."""

import pytest

from repro.experiments.__main__ import main


def test_cli_fig7_with_plot_and_csv(tmp_path, capsys):
    code = main(["fig7", "--scale", "0.25", "--quiet",
                 "--plot", "--csv", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "tc_off_replies" in out
    assert "off replies" in out  # the chart legend
    assert (tmp_path / "fig7.csv").exists()


def test_cli_extension_experiment(capsys):
    code = main(["extA", "--scale", "0.25", "--quiet"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Extension A" in out
    assert "DynamicSubtree" in out


def test_cli_rejects_unknown_figure(capsys):
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_cli_seeds_flag(capsys):
    # seeds applies to fig2/3/4; smoke just the parser path with fig7
    code = main(["fig7", "--scale", "0.25", "--quiet", "--seeds", "1"])
    assert code == 0
