"""Unit tests for the figure-harness logic (no heavy simulation).

The expensive sweeps are exercised by the benchmark suite; here the
aggregation, formatting and plotting logic are tested against stubbed
results, plus one genuinely tiny end-to-end figure (fig7).
"""

from unittest import mock

import pytest

from repro.experiments import FigureResult, fig2, fig7, scaling_config
from repro.experiments.figures import _sizes_for, SIZES_FULL, SIZES_MEDIUM, \
    SIZES_SMALL
from repro.experiments.runner import SteadyStateResult


def fake_steady(config, thr=1000.0):
    return SteadyStateResult(
        config=config, mean_node_throughput=thr,
        node_throughputs=[thr] * config.n_mds, hit_rate=0.9,
        prefix_fraction=0.2, forward_fraction=0.05, total_ops=1000,
        client_mean_latency_s=0.002, errors=0, total_metadata=5000)


def test_sizes_for_scale_regimes():
    assert _sizes_for(1.0) == SIZES_FULL
    assert _sizes_for(0.5) == SIZES_MEDIUM
    assert _sizes_for(0.2) == SIZES_SMALL


def test_scaling_config_scales_with_cluster():
    small = scaling_config("FileHash", 4, 0.5)
    large = scaling_config("FileHash", 8, 0.5)
    assert large.n_users == 2 * small.n_users
    assert large.n_clients == 2 * small.n_clients
    assert small.cache_capacity_per_mds == large.cache_capacity_per_mds


def test_fig2_aggregates_stubbed_results():
    calls = []

    def stub(config):
        calls.append(config)
        return fake_steady(config, thr=100.0 * config.n_mds
                           + {"StaticSubtree": 5}.get(config.strategy, 0))

    with mock.patch("repro.experiments.figures.run_steady_state", stub):
        result = fig2(scale=0.2, seeds=2)
    assert isinstance(result, FigureResult)
    assert result.headers[0] == "mds_cluster_size"
    # 5 strategies x 3 sizes x 2 seeds
    assert len(calls) == 30
    # rows carry the stubbed throughputs
    sizes = [row[0] for row in result.rows]
    assert sizes == SIZES_SMALL
    static_curve = dict(result.series["StaticSubtree"])
    assert static_curve[SIZES_SMALL[0]] == pytest.approx(
        100.0 * SIZES_SMALL[0] + 5)


def test_fig2_seed_averaging():
    values = iter([100.0, 300.0] * 1000)

    def stub(config):
        return fake_steady(config, thr=next(values))

    with mock.patch("repro.experiments.figures.run_steady_state", stub):
        result = fig2(scale=0.2, seeds=2)
    first = dict(result.series["StaticSubtree"])[SIZES_SMALL[0]]
    assert first == pytest.approx(200.0)


def test_figure_result_format_and_plot():
    result = FigureResult(
        figure="Figure X", title="demo", headers=["x", "a", "b"],
        rows=[[1, 10, 20], [2, 15, 25]], notes="note",
        series={"a": [(1, 10), (2, 15)], "b": [(1, 20), (2, 25)]})
    text = result.format()
    assert "Figure X" in text and "note" in text
    chart = result.plot(width=30, height=6)
    assert "o a" in chart and "x b" in chart


def test_plottable_reduces_rich_series():
    result = FigureResult(
        figure="F", title="t", headers=["time"], rows=[],
        series={
            "plain": [(0, 1.0)],
            "minavgmax": [(0, 1.0, 2.0, 3.0)],
            "rates": [(0, 5.0, 6.0)],
            "empty": [],
        })
    plottable = result.plottable()
    assert plottable["plain"] == [(0, 1.0)]
    assert plottable["minavgmax avg"] == [(0, 2.0)]
    assert plottable["rates replies"] == [(0, 5.0)]
    assert plottable["rates forwards"] == [(0, 6.0)]
    assert "empty" not in plottable


def test_fig7_end_to_end_tiny():
    result = fig7(scale=0.25)
    assert result.figure == "Figure 7"
    off = result.series["off"]
    on = result.series["on"]
    assert sum(f for (_t, _r, f) in off) > sum(f for (_t, _r, f) in on)
