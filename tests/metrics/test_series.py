"""Unit tests for metric primitives."""

import pytest

from repro.metrics import (BucketCounter, DeltaTracker, TimeSeries,
                           format_series, format_table)


def test_bucket_width_validation():
    with pytest.raises(ValueError):
        BucketCounter(0.0)


def test_bucket_counts_and_rates():
    bc = BucketCounter(1.0)
    bc.add(0.1)
    bc.add(0.9)
    bc.add(1.5)
    assert bc.total == 3.0
    assert bc.rate_series() == [(0.5, 2.0), (1.5, 1.0)]
    assert bc.rate_at(0.3) == 2.0
    assert bc.rate_at(5.0) == 0.0


def test_bucket_count_in_window():
    bc = BucketCounter(1.0)
    for t in (0.5, 1.5, 2.5, 3.5):
        bc.add(t)
    assert bc.count_in(1.0, 3.0) == 2.0
    assert bc.count_in(0.0, 10.0) == 4.0
    assert bc.count_in(5.0, 6.0) == 0.0


def test_timeseries_ordering_enforced():
    ts = TimeSeries()
    ts.record(1.0, 10.0)
    with pytest.raises(ValueError):
        ts.record(0.5, 5.0)


def test_timeseries_value_at():
    ts = TimeSeries()
    ts.record(1.0, 10.0)
    ts.record(2.0, 20.0)
    assert ts.value_at(0.5) == 0.0
    assert ts.value_at(1.0) == 10.0
    assert ts.value_at(1.5) == 10.0
    assert ts.value_at(3.0) == 20.0
    assert ts.mean() == 15.0
    assert len(ts) == 2


def test_timeseries_empty_mean():
    assert TimeSeries().mean() == 0.0


def test_delta_tracker():
    dt = DeltaTracker()
    dt.add("x", 3)
    dt.add("x")
    assert dt.value("x") == 4
    assert dt.delta("x") == 4
    snap = dt.snapshot()
    assert snap == {"x": 4}
    dt.add("x", 2)
    assert dt.delta("x") == 2
    assert dt.snapshot() == {"x": 2}
    assert dt.snapshot() == {"x": 0}


def test_format_table_alignment():
    out = format_table(["name", "value"], [["a", 1.0], ["bb", 123456.0]],
                       title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5
    # all rows same width
    assert len(set(len(l) for l in lines[2:])) == 1


def test_format_series():
    out = format_series("s", [(1, 2.0)], x_label="t", y_label="v")
    assert "s" in out and "t" in out and "v" in out
