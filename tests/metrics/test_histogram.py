"""Tests for the streaming log-bucket latency histogram."""

import random

import pytest

from repro.metrics import EMPTY_SUMMARY, LatencyHistogram, LatencySummary


def test_empty_histogram_reports_zeros():
    h = LatencyHistogram()
    assert h.count == 0
    assert h.mean == 0.0
    assert h.quantile(0.5) == 0.0
    assert h.summary() is EMPTY_SUMMARY


def test_single_sample_all_quantiles_equal_it():
    h = LatencyHistogram()
    h.record(0.0042)
    for q in (0.0, 0.5, 0.95, 0.99, 1.0):
        assert h.quantile(q) == pytest.approx(0.0042)
    s = h.summary()
    assert s.count == 1
    assert s.min_s == s.max_s == pytest.approx(0.0042)


def test_mean_is_exact_not_bucketed():
    h = LatencyHistogram()
    for v in (0.001, 0.002, 0.003):
        h.record(v)
    assert h.mean == pytest.approx(0.002)
    assert h.total == pytest.approx(0.006)


def test_quantiles_within_bucket_relative_error():
    rng = random.Random(7)
    samples = sorted(rng.uniform(1e-4, 1.0) for _ in range(5000))
    h = LatencyHistogram()
    for v in samples:
        h.record(v)
    # bucket width bounds the relative error at default resolution
    rel = 10 ** (1 / h.buckets_per_decade) - 1
    for q in (0.50, 0.95, 0.99):
        exact = samples[int(q * (len(samples) - 1))]
        assert h.quantile(q) == pytest.approx(exact, rel=2 * rel)


def test_quantiles_clamped_to_observed_range():
    h = LatencyHistogram()
    h.record(0.5)
    h.record(0.6)
    assert h.quantile(0.0) >= 0.5
    assert h.quantile(1.0) <= 0.6


def test_negative_samples_clamp_to_zero():
    h = LatencyHistogram()
    h.record(-1.0)
    assert h.count == 1
    assert h.min == 0.0


def test_overflow_and_underflow_buckets():
    h = LatencyHistogram(lo=1e-3, hi=1.0)
    h.record(1e-9)   # underflow
    h.record(50.0)   # overflow
    assert h.count == 2
    assert h.min == pytest.approx(1e-9)
    assert h.max == pytest.approx(50.0)
    assert h.quantile(1.0) == pytest.approx(50.0)


def test_merge_matches_recording_everything_in_one():
    a, b, both = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
    rng = random.Random(3)
    for _ in range(500):
        v = rng.expovariate(100.0)
        (a if rng.random() < 0.5 else b).record(v)
        both.record(v)
    a.merge(b)
    assert a.count == both.count
    assert a.mean == pytest.approx(both.mean)
    for q in (0.5, 0.95, 0.99):
        assert a.quantile(q) == pytest.approx(both.quantile(q))


def test_merge_rejects_different_layouts():
    with pytest.raises(ValueError, match="layouts differ"):
        LatencyHistogram().merge(LatencyHistogram(lo=1e-3))


def test_copy_is_independent():
    h = LatencyHistogram()
    h.record(0.01)
    c = h.copy()
    c.record(0.02)
    assert h.count == 1
    assert c.count == 2


def test_subtract_gives_interval_histogram():
    h = LatencyHistogram()
    for _ in range(100):
        h.record(0.001)
    baseline = h.copy()
    for _ in range(50):
        h.record(0.1)
    delta = h.subtract(baseline)
    assert delta.count == 50
    # all interval samples were ~0.1s, none of the 0.001s baseline
    assert delta.quantile(0.5) == pytest.approx(0.1, rel=0.15)
    assert h.count == 150  # subtract does not mutate


def test_subtract_none_baseline_is_copy():
    h = LatencyHistogram()
    h.record(0.5)
    d = h.subtract(None)
    assert d.count == 1
    d.record(0.5)
    assert h.count == 1


def test_subtract_rejects_non_prefix_baseline():
    h = LatencyHistogram()
    h.record(0.001)
    later = h.copy()
    later.record(0.002)
    with pytest.raises(ValueError, match="not a prefix"):
        h.subtract(later)


def test_quantile_validates_range():
    with pytest.raises(ValueError):
        LatencyHistogram().quantile(1.5)


def test_percentile_is_quantile_alias():
    h = LatencyHistogram()
    for v in (0.001, 0.002, 0.003, 0.004):
        h.record(v)
    assert h.percentile(95) == h.quantile(0.95)


def test_summary_format_mentions_percentiles():
    s = LatencySummary(count=3, mean_s=0.002, p50_s=0.002, p95_s=0.003,
                       p99_s=0.003, min_s=0.001, max_s=0.003)
    text = s.format()
    assert "p50=2.000ms" in text
    assert "p99=3.000ms" in text
