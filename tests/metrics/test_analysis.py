"""Tests for statistical helpers."""

import math

import pytest

from repro.metrics.analysis import (Summary, moving_average, percentile,
                                    relative_change, summarize, trim_warmup)


def test_percentile_basics():
    values = [1, 2, 3, 4, 5]
    assert percentile(values, 0) == 1
    assert percentile(values, 50) == 3
    assert percentile(values, 100) == 5
    assert percentile(values, 25) == 2.0


def test_percentile_interpolates():
    assert percentile([0, 10], 50) == 5.0
    assert percentile([0, 10], 75) == 7.5


def test_percentile_single_value():
    assert percentile([7.5], 99) == 7.5


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_summarize():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.n == 4
    assert s.mean == 2.5
    assert s.minimum == 1.0 and s.maximum == 4.0
    assert s.p50 == 2.5
    assert s.std == pytest.approx(math.sqrt(1.25))
    assert "p99" in s.format()


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_trim_warmup():
    pts = [(0.5, 1.0), (1.5, 2.0), (2.5, 3.0)]
    assert trim_warmup(pts, 1.0) == [(1.5, 2.0), (2.5, 3.0)]
    assert trim_warmup(pts, 0.0) == pts


def test_moving_average():
    pts = [(0, 0.0), (1, 10.0), (2, 20.0), (3, 30.0)]
    smoothed = moving_average(pts, window=3)
    assert smoothed[0] == (0, 5.0)
    assert smoothed[1] == (1, 10.0)
    assert smoothed[3] == (3, 25.0)
    assert moving_average(pts, window=1) == pts


def test_moving_average_validation():
    with pytest.raises(ValueError):
        moving_average([], window=0)


def test_relative_change():
    assert relative_change(100.0, 150.0) == pytest.approx(0.5)
    assert relative_change(100.0, 50.0) == pytest.approx(-0.5)
    assert relative_change(0.0, 0.0) == 0.0
    assert relative_change(0.0, 5.0) == math.inf
