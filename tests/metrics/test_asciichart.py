"""Tests for the terminal chart renderer."""

import pytest

from repro.metrics.asciichart import render_chart


def test_empty_input_rejected():
    with pytest.raises(ValueError):
        render_chart({})
    with pytest.raises(ValueError):
        render_chart({"a": []})


def test_too_small_rejected():
    with pytest.raises(ValueError):
        render_chart({"a": [(0, 1)]}, width=4, height=2)


def test_basic_render_contains_markers_and_legend():
    out = render_chart({"up": [(0, 0), (1, 1), (2, 2)],
                        "down": [(0, 2), (1, 1), (2, 0)]},
                       title="T", x_label="time")
    assert "T" in out
    assert "o up" in out and "x down" in out
    assert "time" in out
    assert "o" in out and "x" in out


def test_axis_labels_reflect_ranges():
    out = render_chart({"s": [(0, 0), (10, 100)]})
    # y max carries 5% headroom above 100; x max is exact
    lines = [l for l in out.splitlines() if "|" in l]
    top_label = lines[0].split("|")[0].strip()
    assert 100 <= float(top_label) <= 110
    assert "10" in out.splitlines()[-3]  # x-axis extent line


def test_flat_series_does_not_crash():
    out = render_chart({"flat": [(0, 5), (1, 5), (2, 5)]})
    assert "o flat" in out


def test_single_point():
    out = render_chart({"dot": [(1, 1)]})
    assert "o" in out


def test_nonnegative_data_keeps_zero_floor():
    out = render_chart({"s": [(0, 0), (1, 50)]})
    # bottom label must be 0, not a negative padding artifact
    lines = [l for l in out.splitlines() if "|" in l]
    bottom_label = lines[-1].split("|")[0].strip()
    assert bottom_label == "0"


def test_interpolation_dots_between_far_points():
    out = render_chart({"s": [(0, 0), (10, 100)]}, width=40, height=12)
    assert "." in out


def test_grid_dimensions():
    out = render_chart({"s": [(0, 0), (1, 1)]}, width=30, height=8)
    plot_lines = [l for l in out.splitlines() if "|" in l]
    assert len(plot_lines) == 8
    for line in plot_lines:
        assert len(line.split("|", 1)[1]) == 30


def test_many_series_cycle_markers():
    series = {f"s{i}": [(0, i), (1, i + 1)] for i in range(10)}
    out = render_chart(series)
    for i in range(10):
        assert f"s{i}" in out
