"""Model-backend gate: parsing, precedence, fallback, provenance."""

import pytest

from repro.api import scaling_config
from repro.experiments import env_gates
from repro.experiments._build import build_simulation
from repro.model import backend as backend_mod
from repro.model.backend import (MODEL_ENV, compiled_model_unavailable_reason,
                                 compiled_model_viable, make_metadata_cache,
                                 make_popularity_map, make_resolution_memo,
                                 model_info, parse_model_env, resolve_model,
                                 set_model_gate)

needs_cmodel = pytest.mark.skipif(
    not compiled_model_viable(),
    reason="compiled model extension not built "
           "(python tools/build_kernel.py)")


@pytest.fixture(autouse=True)
def clean_gate(monkeypatch):
    """Every test starts from an unset env var and an unset process gate."""
    monkeypatch.delenv(MODEL_ENV, raising=False)
    previous = set_model_gate(None)
    yield
    set_model_gate(previous)


# ----------------------------------------------------------------------
# strict parsing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("raw,expected", [
    (None, None), ("", None), ("   ", None),
    ("reference", "reference"), ("COMPILED", "compiled"),
    (" auto ", "auto"),
])
def test_parse_model_env_accepts_known_tokens(raw, expected):
    assert parse_model_env(raw) == expected


@pytest.mark.parametrize("raw", ["fast", "c", "python", "1", "yes"])
def test_parse_model_env_rejects_unknown_tokens(raw):
    with pytest.raises(ValueError, match=MODEL_ENV):
        parse_model_env(raw)


def test_env_gates_rejects_bad_env(monkeypatch):
    monkeypatch.setenv(MODEL_ENV, "sonic")
    with pytest.raises(ValueError, match=MODEL_ENV):
        env_gates()


# ----------------------------------------------------------------------
# precedence: explicit gate > process gate > env > reference
# ----------------------------------------------------------------------
def test_resolve_defaults_to_reference():
    assert resolve_model() == "reference"


def test_env_var_steers_resolution(monkeypatch):
    monkeypatch.setenv(MODEL_ENV, "reference")
    assert resolve_model() == "reference"


@needs_cmodel
def test_precedence_gate_arg_beats_process_and_env(monkeypatch):
    monkeypatch.setenv(MODEL_ENV, "compiled")
    set_model_gate("compiled")
    assert resolve_model("reference") == "reference"


@needs_cmodel
def test_precedence_process_gate_beats_env(monkeypatch):
    monkeypatch.setenv(MODEL_ENV, "reference")
    set_model_gate("compiled")
    assert resolve_model() == "compiled"


@needs_cmodel
def test_config_model_beats_env(monkeypatch):
    monkeypatch.setenv(MODEL_ENV, "compiled")
    cfg = scaling_config("DynamicSubtree", 2, 0.05, seed=1)
    cfg = cfg.replace(model="reference")
    assert env_gates(cfg).model == "reference"


@needs_cmodel
def test_auto_selects_compiled_when_built():
    assert resolve_model("auto") == "compiled"


# ----------------------------------------------------------------------
# silent fallback when the extension is absent
# ----------------------------------------------------------------------
def test_fallback_when_extension_missing(monkeypatch):
    monkeypatch.setattr(backend_mod, "_C", None)
    assert resolve_model("compiled") == "reference"
    assert resolve_model("auto") == "reference"
    assert compiled_model_viable() is False
    assert compiled_model_unavailable_reason() is not None
    # factories silently hand back the reference classes
    from repro.cache.lru import MetadataCache
    from repro.mds.popularity import PopularityMap
    from repro.namespace.memo import ResolutionMemo
    assert isinstance(make_metadata_cache(4, model="compiled"),
                      MetadataCache)
    assert isinstance(make_resolution_memo(model="compiled"),
                      ResolutionMemo)
    assert isinstance(make_popularity_map(600.0, model="compiled"),
                      PopularityMap)


@needs_cmodel
def test_unavailable_reason_none_when_built():
    assert compiled_model_unavailable_reason() is None


# ----------------------------------------------------------------------
# factories construct the selected implementation
# ----------------------------------------------------------------------
@needs_cmodel
def test_factories_build_compiled_types():
    from repro.model import _cmodel
    assert isinstance(make_metadata_cache(4, model="compiled"),
                      _cmodel.MetadataCache)
    assert isinstance(make_resolution_memo(16, model="compiled"),
                      _cmodel.ResolutionMemo)
    assert isinstance(make_popularity_map(600.0, model="compiled"),
                      _cmodel.PopularityMap)


def test_factories_build_reference_types():
    from repro.cache.lru import MetadataCache
    from repro.mds.popularity import PopularityMap
    from repro.namespace.memo import ResolutionMemo
    assert isinstance(make_metadata_cache(4, model="reference"),
                      MetadataCache)
    assert isinstance(make_resolution_memo(model="reference"),
                      ResolutionMemo)
    assert isinstance(make_popularity_map(600.0, model="reference"),
                      PopularityMap)


# ----------------------------------------------------------------------
# provenance
# ----------------------------------------------------------------------
def test_model_info_shape():
    info = model_info("reference")
    assert info == {"model_backend": "reference",
                    "compiled_model_viable": compiled_model_viable()}


@pytest.mark.parametrize("backend", [
    pytest.param("reference", id="reference"),
    pytest.param("compiled", id="compiled", marks=needs_cmodel),
])
def test_summary_carries_model_provenance(monkeypatch, backend):
    monkeypatch.setenv(MODEL_ENV, backend)
    cfg = scaling_config("DynamicSubtree", 2, 0.05, seed=7)
    sim = build_simulation(cfg)
    assert sim.model_backend == backend
    sim.run_to(cfg.run_until_s)
    summary = sim.summary()
    assert summary.kernel["model_backend"] == backend
    assert summary.kernel["compiled_model_viable"] \
        == compiled_model_viable()
    # provenance stays out of the repr/equality contract
    assert "model_backend" not in repr(summary)


@needs_cmodel
def test_build_records_gate_for_runtime_constructions(monkeypatch):
    """``build_simulation`` pins the process gate so objects constructed
    mid-run (failover resets, proxy tiers) pick the build's backend."""
    monkeypatch.setenv(MODEL_ENV, "compiled")
    cfg = scaling_config("DynamicSubtree", 2, 0.05, seed=7)
    build_simulation(cfg)
    monkeypatch.delenv(MODEL_ENV)
    from repro.model import _cmodel
    assert isinstance(make_metadata_cache(8), _cmodel.MetadataCache)
