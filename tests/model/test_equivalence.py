"""The compiled model must be invisible to results.

``REPRO_MODEL=reference`` and ``REPRO_MODEL=compiled`` must produce
bit-identical summaries for the same seed — the C structures replicate
every counter, exception and float expression of the pure-python model.
The contract is enforced composing with every other execution gate:
both fast-lane modes, both kernel backends, and sharded execution.
"""

import multiprocessing

import pytest

from repro._fastpath import FASTPATH_ENV
from repro.api import build_simulation, run_sharded_summary, scaling_config
from repro.model.backend import MODEL_ENV, compiled_model_viable
from repro.sim.backend import KERNEL_ENV, compiled_viable

pytestmark = pytest.mark.skipif(
    not compiled_model_viable(),
    reason="compiled model extension not built "
           "(python tools/build_kernel.py)")

KERNELS = [
    pytest.param("reference", id="kernel-reference"),
    pytest.param("compiled", id="kernel-compiled",
                 marks=pytest.mark.skipif(
                     not compiled_viable(),
                     reason="compiled kernel extension not built")),
]


def _run(monkeypatch, model: str, *, fastpath: bool = True,
         kernel: str = "reference"):
    monkeypatch.setenv(MODEL_ENV, model)
    monkeypatch.setenv(FASTPATH_ENV, "1" if fastpath else "0")
    monkeypatch.setenv(KERNEL_ENV, kernel)
    cfg = scaling_config("DynamicSubtree", 4, 0.1, seed=42)
    sim = build_simulation(cfg)
    assert sim.model_backend == model
    sim.run_to(cfg.run_until_s)
    return sim.summary()


@pytest.mark.parametrize("fastpath", [False, True],
                         ids=["fastpath-off", "fastpath-on"])
@pytest.mark.parametrize("kernel", KERNELS)
def test_model_backends_bit_identical(monkeypatch, fastpath, kernel):
    """The acceptance criterion: for a fixed seed the compiled model's
    summary repr equals the reference's, in every fast-lane × kernel
    combination."""
    ref = _run(monkeypatch, "reference", fastpath=fastpath, kernel=kernel)
    com = _run(monkeypatch, "compiled", fastpath=fastpath, kernel=kernel)
    assert repr(ref) == repr(com)
    assert ref == com
    # provenance travels on the summary, outside the equality contract
    assert ref.kernel["model_backend"] == "reference"
    assert com.kernel["model_backend"] == "compiled"


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="sharding requires the fork start method")
def test_model_backend_composes_with_shards(monkeypatch):
    """The gate crosses the fork: a sharded compiled-model run merges to
    the same summary as the serial reference run."""
    from repro.api import sharded_config

    cfg = sharded_config(n_mds=4, scale=1.0, users_per_mds=8,
                         clients_per_mds=8, files_per_user=10,
                         shared_tree_files=40, warmup_s=0.25,
                         duration_s=0.5, net_hop_s=0.0025)

    monkeypatch.setenv(MODEL_ENV, "reference")
    sim = build_simulation(cfg)
    t0, t1 = cfg.measure_window
    sim.run_to(t1)
    serial = sim.summary(window=(t0, t1))

    monkeypatch.setenv(MODEL_ENV, "compiled")
    merged = run_sharded_summary(cfg, 2)
    assert repr(serial) == repr(merged)
    assert serial == merged
    assert merged.kernel["model_backend"] == "compiled"
