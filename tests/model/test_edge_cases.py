"""Edge cases the differential fuzzers under-sample, on both backends.

Each test runs against the reference and the compiled implementation
(same assertions, same error messages) — corners like capacity-1 caches
and very deep pin chains exercise freelist reuse and sentinel handling
in the C extension that ordinary workloads rarely reach.
"""

import pytest

from repro.model.backend import (compiled_model_viable, make_metadata_cache,
                                 set_model_gate)
from repro.namespace import Namespace, build_tree

BACKENDS = [
    pytest.param("reference", id="reference"),
    pytest.param("compiled", id="compiled",
                 marks=pytest.mark.skipif(
                     not compiled_model_viable(),
                     reason="compiled model extension not built")),
]


@pytest.fixture(params=BACKENDS)
def backend(request):
    yield request.param


@pytest.fixture
def cache_factory(backend):
    return lambda capacity: make_metadata_cache(capacity, model=backend)


# ----------------------------------------------------------------------
# capacity-1 cache: every insert evicts, sentinels always adjacent
# ----------------------------------------------------------------------
def test_capacity_one_eviction_churn(cache_factory):
    cache = cache_factory(1)
    for ino in range(1, 200):
        cache.insert(ino, None, False)
        assert ino in cache and len(cache) == 1
        cache.verify_invariants()
    assert cache.counters.evictions == 198
    assert not cache.overflowed


def test_capacity_one_pinned_overflow(cache_factory):
    cache = cache_factory(1)
    cache.insert(1, None, True)
    cache.pin(1)
    # the pinned root cannot be evicted; inserting a child overflows
    cache.insert(2, 1, False)
    assert cache.overflowed and len(cache) == 2
    cache.verify_invariants()
    cache.unpin(1)
    # next insert drains the overflow back to capacity
    cache.insert(3, None, False)
    assert len(cache) <= 2
    cache.verify_invariants()


# ----------------------------------------------------------------------
# deep pin/unpin chains: one long ancestry, pins rippling to the root
# ----------------------------------------------------------------------
def test_deep_pin_unpin_chain(cache_factory):
    depth = 500
    cache = cache_factory(depth + 10)
    parent = None
    for ino in range(1, depth + 1):
        cache.insert(ino, parent, True)
        parent = ino
    # every interior node is pinned by its child; only the leaf is loose
    unpinned = [e.ino for e in cache.entries() if not e.pinned]
    assert unpinned == [depth]
    cache.verify_invariants()
    # an external pin on the leaf, then release — state fully restored
    cache.pin(depth)
    assert cache.get(depth).pinned
    cache.unpin(depth)
    assert not cache.get(depth).pinned
    # removing leaves one by one unpins each parent in turn
    for ino in range(depth, 1, -1):
        cache.remove(ino)
        assert not cache.get(ino - 1).pinned
    cache.verify_invariants()
    assert len(cache) == 1


def test_unpin_errors_match(cache_factory):
    cache = cache_factory(4)
    cache.insert(1, None, True)
    with pytest.raises(RuntimeError, match="unpin without pin for ino 1"):
        cache.unpin(1)
    with pytest.raises(KeyError):
        cache.pin(99)


def test_remove_with_children_refuses(cache_factory):
    cache = cache_factory(8)
    cache.insert(1, None, True)
    cache.insert(2, 1, True)
    cache.insert(3, 1, False)
    with pytest.raises(RuntimeError,
                       match="cannot remove ino 1: 2 cached children"):
        cache.remove(1)


# ----------------------------------------------------------------------
# collect_subtree with replicas mixed in
# ----------------------------------------------------------------------
def test_collect_subtree_with_replicas(cache_factory):
    cache = cache_factory(32)
    cache.insert(1, None, True)
    cache.insert(2, 1, True, replica=True)
    cache.insert(3, 2, True)
    cache.insert(4, 3, False, replica=True)
    cache.insert(5, 2, False)
    cache.insert(6, 1, False, replica=True)
    got = cache.collect_subtree(2)
    # leaves-first: every entry precedes its parent, replicas included
    inos = [e.ino for e in got]
    assert set(inos) == {2, 3, 4, 5}
    assert inos.index(4) < inos.index(3) < inos.index(2)
    assert inos.index(5) < inos.index(2)
    assert [e.ino for e in got if e.replica] == [4, 2]
    # a subtree rooted at a leaf is just the leaf
    assert [e.ino for e in cache.collect_subtree(6)] == [6]
    # fractions count the replicas we inserted
    assert cache.replica_fraction() == pytest.approx(3 / 6)


# ----------------------------------------------------------------------
# memo invalidation on rename/unlink through the full namespace stack
# ----------------------------------------------------------------------
@pytest.fixture
def memo_ns(backend):
    previous = set_model_gate(backend)
    ns = Namespace()
    build_tree(ns, {
        "a": {"b": {"c": {"f.txt": 10}}, "g.txt": 20},
    })
    ns.enable_resolution_memo()
    yield ns
    set_model_gate(previous)


def test_memo_rename_invalidates_deep_chain(memo_ns):
    ns = memo_ns
    deep = ("a", "b", "c", "f.txt")
    ino = ns.resolve(deep).ino
    ns.ancestors(ino)  # memoise the chain as well as the path
    before = ns.resolution_memo.invalidations
    ns.rename(("a", "b"), ("a", "b2"))
    assert ns.resolution_memo.invalidations > before
    assert ns.try_resolve(deep) is None
    assert ns.resolve(("a", "b2", "c", "f.txt")).ino == ino
    ns.resolution_memo.verify_invariants()


def test_memo_unlink_then_recreate(memo_ns):
    ns = memo_ns
    path = ("a", "g.txt")
    old = ns.resolve(path).ino
    ns.unlink(path)
    assert ns.try_resolve(path) is None
    fresh = ns.create_file(path)
    assert ns.resolve(path).ino == fresh.ino != old
    ns.resolution_memo.verify_invariants()
