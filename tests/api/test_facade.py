"""The public facade: surface completeness, run_experiment, deprecations."""

import importlib
import sys
import warnings
from pathlib import Path

import pytest

import repro.api as api

REPO = Path(__file__).resolve().parents[2]


def small_cfg(**kw):
    base = dict(n_mds=3, scale=0.1, warmup_s=0.3, duration_s=1.0, seed=7)
    base.update(kw)
    return api.ExperimentConfig(**base)


class TestSurface:
    def test_all_names_resolve(self):
        for name in api.__all__:
            assert hasattr(api, name), name

    def test_core_entry_points_present(self):
        assert callable(api.run_experiment)
        assert callable(api.build_simulation)
        assert callable(api.run_steady_state)
        assert api.ExperimentConfig and api.ClusterSummary and api.Trace


class TestRunExperiment:
    def test_returns_summary_and_config(self):
        result = api.run_experiment(small_cfg())
        assert isinstance(result, api.RunResult)
        assert result.config.n_mds == 3
        assert isinstance(result.summary, api.ClusterSummary)
        assert result.summary.total_ops > 0
        assert result.summary.throughput_ops_per_s > 0

    def test_reports_per_op_percentiles(self):
        result = api.run_experiment(small_cfg())
        assert result.latency_by_op  # op name -> LatencySummary
        for op, summary in result.latency_by_op.items():
            assert isinstance(op, str)
            assert summary.p50_s <= summary.p95_s <= summary.p99_s

    def test_run_until_override(self):
        cfg = small_cfg()
        result = api.run_experiment(cfg, run_until=0.5)
        assert result.summary.total_ops < \
            api.run_experiment(cfg).summary.total_ops

    def test_summary_format_is_printable(self):
        text = api.run_experiment(small_cfg()).summary.format()
        assert "cluster summary" in text
        assert "p50/p95/p99" in text
        assert "latency by op type" in text


class TestSimulationSummary:
    def test_summary_replaces_adhoc_aggregation(self):
        sim = api.build_simulation(small_cfg())
        sim.run_to(1.0)
        summary = sim.summary()
        # the typed object must agree with the raw counters it folds
        assert summary.total_served == sum(
            n.stats.ops_served for n in sim.cluster.nodes)
        assert summary.total_ops == sum(
            c.stats.ops_completed for c in sim.clients)
        assert summary.hit_rate == sim.cluster.cluster_hit_rate()
        assert 0.0 <= summary.forward_fraction <= 1.0

    def test_summary_window_defaults_clamp_to_now(self):
        sim = api.build_simulation(small_cfg())
        sim.run_to(0.4)  # before the warmup window would normally end
        summary = sim.summary()
        assert summary.window[1] <= 0.4


class TestDeprecatedBuilderPath:
    def test_import_warns_but_works(self):
        sys.modules.pop("repro.experiments.builder", None)
        with pytest.warns(DeprecationWarning, match="repro.api"):
            import repro.experiments.builder as legacy
        assert legacy.build_simulation is api.build_simulation
        sim = legacy.build_simulation(small_cfg())
        assert sim.cluster.n_mds == 3

    def test_reimport_after_warning_still_exposes_symbols(self):
        sys.modules.pop("repro.experiments.builder", None)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            legacy = importlib.import_module("repro.experiments.builder")
        for name in ("Simulation", "build_simulation", "_flash_target",
                     "_make_workload", "_size_cache"):
            assert hasattr(legacy, name), name


class TestNoDeepImportsRemain:
    @pytest.mark.parametrize("tree", ["benchmarks", "examples"])
    def test_consumers_use_the_facade(self, tree):
        offenders = []
        for path in (REPO / tree).rglob("*.py"):
            text = path.read_text()
            if "repro.experiments.builder" in text:
                offenders.append(path.name)
        assert not offenders, (
            f"{tree} must import via repro.api, found deep imports of "
            f"repro.experiments.builder in: {offenders}")
