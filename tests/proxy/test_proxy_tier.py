"""The adaptive proxy tier: absorption, invalidation, delegation."""

import pytest

from repro.experiments import ExperimentConfig, OpenLoopSpec, build_simulation
from repro.mds import SimParams
from repro.mds.messages import MdsRequest, OpType
from repro.proxy import ProxySpec, ProxyTier


def proxied_cfg(hotspot=True, proxy_spec=None, **kw):
    spec = OpenLoopSpec(
        kind="general", rate_ops_per_s=4000.0, sources=8,
        hotspot_prob=0.8 if hotspot else 0.0,
        hotspot_start_s=0.15, hotspot_duration_s=0.3)
    base = dict(
        n_mds=2, scale=0.25, workload=spec, warmup_s=0.2, duration_s=0.4,
        cache_capacity_per_mds=2000,
        params=SimParams(inbox_capacity=32),
        proxy=proxy_spec or ProxySpec(hot_threshold=5.0))
    base.update(kw)
    return ExperimentConfig(**base)


def run(cfg):
    sim = build_simulation(cfg)
    sim.run_to(cfg.run_until_s)
    return sim


class TestSpecValidation:
    @pytest.mark.parametrize("field,value", [
        ("n_proxies", 0), ("cpu_op_s", -1.0), ("cache_ttl_s", 0.0),
        ("hot_threshold", 0.0), ("popularity_halflife_s", 0.0),
        ("max_cached_paths", 0), ("overload_retries", -1),
        ("retry_backoff_s", -0.001)])
    def test_rejects_bad_knobs(self, field, value):
        with pytest.raises(ValueError, match=field):
            ProxySpec(**{field: value}).validate()

    def test_defaults_validate(self):
        assert ProxySpec().validate() is not None


class TestAbsorption:
    def test_hotspot_reads_are_absorbed(self):
        sim = run(proxied_cfg())
        stats = sim.proxy.stats_dict()
        assert stats["absorbed"] > 0
        # the cache saved real upstream round trips
        assert stats["forwarded"] < stats["requests"]

    def test_no_hotspot_little_absorption(self):
        hot = run(proxied_cfg(hotspot=True)).proxy.stats_dict()
        cold = run(proxied_cfg(hotspot=False)).proxy.stats_dict()
        assert cold["absorbed"] < hot["absorbed"]

    def test_stats_dict_shape(self):
        stats = run(proxied_cfg()).proxy.stats_dict()
        assert set(stats) == {"requests", "absorbed", "coalesced",
                              "forwarded", "invalidations", "retries"}
        assert all(v >= 0 for v in stats.values())

    def test_requests_all_routed_through_proxies(self):
        sim = run(proxied_cfg())
        offered = sum(c.stats.offered for c in sim.clients)
        assert sim.proxy.stats_dict()["requests"] == offered


class TestInvalidation:
    def test_mutation_drops_cached_replies_on_every_node(self):
        sim = run(proxied_cfg())
        tier = sim.proxy
        path = sim.snapshot.user_roots[0]
        fake_reply = object()
        for n in tier.nodes:
            n._cache.clear()  # drop run leftovers so the delta is exact
            n._cache[(OpType.OPEN, path)] = (fake_reply, sim.env.now)
        before = sum(n.stats.invalidations for n in tier.nodes)
        request = MdsRequest(op=OpType.UNLINK, path=path, client_id=0)
        tier.invalidate(request)
        assert all((OpType.OPEN, path) not in n._cache for n in tier.nodes)
        after = sum(n.stats.invalidations for n in tier.nodes)
        assert after - before == len(tier.nodes)

    def test_unrelated_mutation_leaves_cache_alone(self):
        sim = run(proxied_cfg())
        tier = sim.proxy
        cached, other = sim.snapshot.user_roots[:2]
        node = tier.nodes[0]
        node._cache[(OpType.OPEN, cached)] = (object(), sim.env.now)
        request = MdsRequest(op=OpType.UNLINK, path=other, client_id=0)
        tier.invalidate(request)
        assert (OpType.OPEN, cached) in node._cache


class TestDelegation:
    def test_tier_exposes_cluster_surface(self):
        sim = run(proxied_cfg())
        tier = sim.proxy
        assert tier.strategy is sim.cluster.strategy
        assert tier.n_mds == sim.cluster.n_mds
        assert tier.params is sim.cluster.params
        assert tier.tracer is sim.cluster.tracer

    def test_key_affinity_routing_is_stable_and_in_range(self):
        sim = run(proxied_cfg())
        tier = sim.proxy
        for path in sim.snapshot.user_roots[:4]:
            route = tier._route(path)
            assert 0 <= route < len(tier.nodes)
            assert route == tier._route(path)


class TestDeterminism:
    def test_proxy_runs_are_deterministic(self):
        a = run(proxied_cfg())
        b = run(proxied_cfg())
        assert repr(a.summary()) == repr(b.summary())
        assert a.proxy.stats_dict() == b.proxy.stats_dict()

    def test_proxy_off_config_has_no_tier(self):
        sim = run(proxied_cfg(proxy_spec=None, proxy=None))
        assert sim.proxy is None
        assert sim.summary().proxy is None

    def test_summary_carries_proxy_counters(self):
        sim = run(proxied_cfg())
        assert sim.summary().proxy == sim.proxy.stats_dict()
