"""Golden tests for the settled-event fast lane (``fastlane=True``).

The fast lane changes *how* the kernel moves — inline-settled grants,
synchronous handoffs inside ``release()``/``put()``, freelist pooling —
but must not change *what* any process computes or when (in simulated
time) it computes it.  These tests pin both halves of that contract:

* the fast lane's own micro-interleaving is golden-traced (a handed-off
  waiter resumes *inside* the releasing call, so its "got" line precedes
  the holder's "rel" line at the same instant), and
* every domain-visible quantity — event times, FIFO service order, final
  clock, resource/store state — is proven equal to the reference kernel
  (``fastlane=False``), whose own golden trace lives in
  ``test_engine_hotpath.py``.
"""

import random

from repro.sim import Environment, Resource, Store


def _worker_scenario(fastlane):
    """The fixed-seed process+resource workload from the engine suite."""
    env = Environment(fastlane=fastlane)
    trace = []
    server = Resource(env, capacity=1)
    rng = random.Random(7)
    delays = [round(rng.uniform(0.0, 0.03), 4) for _ in range(9)]

    def worker(wid, think):
        yield env.timeout(think)
        trace.append(("req", wid, round(env.now, 4)))
        req = server.request()
        yield req
        trace.append(("got", wid, round(env.now, 4)))
        yield env.timeout(0.01)
        server.release()
        trace.append(("rel", wid, round(env.now, 4)))

    for wid, think in enumerate(delays[:3]):
        env.process(worker(wid, think))
    env.run()
    return env, trace


def test_golden_fastlane_trace_handoff_order():
    """The fast-lane trace: identical times, got-before-rel at handoffs.

    A contended release hands the slot to the waiter synchronously, so the
    waiter's "got" line lands before the holder's "rel" line — the only
    difference from the reference trace in ``test_engine_hotpath.py``.
    """
    _env, trace = _worker_scenario(fastlane=True)
    assert trace == [
        ("req", 1, 0.0045), ("got", 1, 0.0045),
        ("req", 0, 0.0097),
        ("got", 0, 0.0145), ("rel", 1, 0.0145),
        ("req", 2, 0.0195),
        ("got", 2, 0.0245), ("rel", 0, 0.0245),
        ("rel", 2, 0.0345),
    ]


def test_fastlane_final_state_matches_reference():
    """Same events, same simulated times, same final clock — only the
    within-instant line order differs between the modes."""
    env_ref, trace_ref = _worker_scenario(fastlane=False)
    env_fast, trace_fast = _worker_scenario(fastlane=True)
    assert env_ref.now == env_fast.now
    assert sorted(trace_ref) == sorted(trace_fast)
    # per-worker event times are identical, line by line
    for wid in (0, 1, 2):
        ref = [(kind, t) for kind, w, t in trace_ref if w == wid]
        fast = [(kind, t) for kind, w, t in trace_fast if w == wid]
        assert ref == fast


def test_fastlane_fifo_service_times_match_reference():
    """FIFO queueing grants slots at the same times in both modes."""

    def run(fastlane):
        env = Environment(fastlane=fastlane)
        res = Resource(env, capacity=1)
        starts, ends = {}, {}

        def worker(name, hold):
            yield res.request()
            starts[name] = env.now
            yield env.timeout(hold)
            res.release()
            ends[name] = env.now

        env.process(worker("first", 2.0))
        env.process(worker("second", 1.0))
        env.process(worker("third", 1.0))
        env.run()
        return starts, ends

    assert run(False) == run(True)
    starts, ends = run(True)
    assert starts == {"first": 0.0, "second": 2.0, "third": 3.0}
    assert ends == {"first": 2.0, "second": 3.0, "third": 4.0}


def test_fastlane_store_handoff_preserves_getter_fifo():
    env = Environment(fastlane=True)
    store = Store(env)
    got = []

    def consumer(name):
        item = yield store.get()
        got.append((name, item, env.now))

    env.process(consumer("a"))
    env.process(consumer("b"))

    def producer():
        yield env.timeout(1.0)
        store.put(1)  # consumer "a" resumes inside this call
        store.put(2)
        yield env.timeout(1.0)
        store.put(3)

    env.process(consumer("c"))
    env.process(producer())
    env.run()
    assert got == [("a", 1, 1.0), ("b", 2, 1.0), ("c", 3, 2.0)]
    assert env.fast_resumes >= 3


def test_fastlane_elides_events_and_counts_resumes():
    """Kernel counters prove the elision: fewer calendar entries with the
    fast lane on, every elision counted as a fast resume."""

    def run(fastlane):
        env = Environment(fastlane=fastlane)
        res = Resource(env, capacity=1)
        store = Store(env)

        def producer():
            for i in range(20):
                yield env.timeout(0.5)
                store.put(i)

        def consumer():
            for _ in range(20):
                yield store.get()
                yield res.request()
                yield env.timeout(0.1)
                res.release()

        env.process(producer())
        env.process(consumer())
        env.run()
        return env.kernel_stats()

    off = run(False)
    on = run(True)
    assert off["fast_resumes"] == 0
    assert on["fast_resumes"] > 0
    assert on["events_scheduled"] < off["events_scheduled"]
    assert 0.0 <= on["pool_reuse_rate"] <= 1.0


def test_request_and_timeout_pools_are_reused():
    env = Environment(fastlane=True)
    res = Resource(env, capacity=1)

    def body():
        for _ in range(6):
            yield res.request()  # consumed inline, recycled by the process
            res.release()
            yield env.timeout(0.1)  # dispatched, recycled by the run loop

    env.process(body())
    env.run()
    stats = env.kernel_stats()
    # first of each allocates, the rest come off the freelists
    assert stats["pool_hits"] >= 8
    assert stats["pool_allocs"] <= 4
    assert stats["pool_reuse_rate"] > 0.5


def test_recycled_events_carry_fresh_values():
    """A pooled event must be fully re-initialised: values from a previous
    life may never leak into a later grant."""
    env = Environment(fastlane=True)
    store = Store(env)
    seen = []

    def body():
        for i in range(8):
            store.put(f"item{i}")
            value = yield store.get()  # inline-settled, pooled after use
            seen.append(value)
            yield env.timeout(0.1)

    env.process(body())
    env.run()
    assert seen == [f"item{i}" for i in range(8)]


def test_run_until_event_settled_by_synchronous_handoff():
    """``run(until=ev)`` must stop even when ``ev`` settles inside a
    handoff chain (StopSimulation propagates through the generator)."""
    env = Environment(fastlane=True)
    store = Store(env)
    ev = store.get()  # blocked getter: settles via put() handoff

    def producer():
        yield env.timeout(1.0)
        store.put("x")  # settles `ev` synchronously, stops the run
        yield env.timeout(5.0)  # must not execute before run() returns

    env.process(producer())
    assert env.run(until=ev) == "x"
    assert env.now == 1.0
