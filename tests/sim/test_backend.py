"""The kernel-backend seam: selection, fallback, provenance, parity.

Gate-token parsing and precedence live in
``tests/experiments/test_env_gates.py``; the ordering/equivalence proofs
live in the backend-parametrized hotpath, fastpath-equivalence and shard
suites.  This module covers the seam itself: which class each gate value
yields, the silent fallback when the extension is missing, the
provenance fields, and the compiled ``Timeout``'s API parity with the
reference event type.
"""

import pytest

from repro.api import ExperimentConfig, build_simulation
from repro.sim import (CompiledEnvironment, Environment, EventAlreadyTriggered,
                       backend_of, compiled_viable, kernel_info,
                       make_environment)
from repro.sim import backend as backend_mod
from repro.sim.backend import (EVENT_TYPES, KERNEL_ENV,
                               compiled_unavailable_reason, resolve_kernel)

needs_compiled = pytest.mark.skipif(
    not compiled_viable(),
    reason="compiled kernel extension not built "
           "(python tools/build_kernel.py)")


class TestSelection:
    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        env = make_environment()
        assert type(env) is Environment
        assert backend_of(env) == "reference"

    def test_explicit_reference_gate(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "compiled")
        env = make_environment(kernel="reference")  # arg beats env var
        assert type(env) is Environment

    @needs_compiled
    @pytest.mark.parametrize("gate", ["compiled", "auto"])
    def test_compiled_and_auto_gates(self, gate):
        env = make_environment(kernel=gate)
        assert type(env) is CompiledEnvironment
        assert backend_of(env) == "compiled"

    @needs_compiled
    def test_env_var_selects_compiled(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "compiled")
        assert type(make_environment()) is CompiledEnvironment

    @needs_compiled
    def test_initial_time_and_fastlane_forwarded(self):
        env = make_environment(5.0, fastlane=False, kernel="compiled")
        assert env.now == 5.0
        assert env.kernel_stats()["fastlane"] is False

    @needs_compiled
    def test_config_kernel_field_reaches_build(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        cfg = ExperimentConfig(n_mds=2, scale=0.05, kernel="compiled")
        sim = build_simulation(cfg)
        assert type(sim.env) is CompiledEnvironment
        sim = build_simulation(cfg.replace(kernel="reference"))
        assert type(sim.env) is Environment


class TestFallback:
    def test_missing_extension_falls_back_silently(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_C", None)
        assert not backend_mod.compiled_viable()
        assert resolve_kernel("compiled") == "reference"
        assert resolve_kernel("auto") == "reference"
        env = make_environment(kernel="compiled")
        assert type(env) is Environment
        info = kernel_info(env)
        assert info == {"kernel_backend": "reference",
                        "compiled_viable": False}

    def test_direct_construction_raises_loudly(self, monkeypatch):
        # only the *gate* degrades silently; asking for the class when the
        # extension is missing is a programming error
        monkeypatch.setattr(backend_mod, "_C", None)
        with pytest.raises(RuntimeError, match="build it with"):
            CompiledEnvironment()

    def test_unavailable_reason_tracks_viability(self):
        if compiled_viable():
            assert compiled_unavailable_reason() is None
        else:
            assert compiled_unavailable_reason()


class TestProvenance:
    def test_kernel_info_reference(self):
        info = kernel_info(Environment())
        assert info["kernel_backend"] == "reference"
        assert info["compiled_viable"] is compiled_viable()

    @needs_compiled
    def test_kernel_info_compiled(self):
        info = kernel_info(CompiledEnvironment())
        assert info == {"kernel_backend": "compiled",
                        "compiled_viable": True}

    def test_summary_carries_backend_fields(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        cfg = ExperimentConfig(n_mds=2, scale=0.05)
        sim = build_simulation(cfg)
        sim.run_to(cfg.run_until_s)
        kernel = sim.summary().kernel
        assert kernel["kernel_backend"] == "reference"
        assert kernel["compiled_viable"] is compiled_viable()
        # the counters the bench suite keys on are still present
        assert "events_scheduled" in kernel and "pool_reuse_rate" in kernel


@needs_compiled
class TestCompiledTimeoutParity:
    """The C ``Timeout`` behaves exactly like the reference event type."""

    def test_is_an_event_for_the_kernel(self):
        env = CompiledEnvironment()
        t = env.timeout(0.5, value="x")
        assert isinstance(t, EVENT_TYPES)
        assert t.env is env
        assert t.delay == 0.5
        assert t.triggered and not t.processed
        assert t.ok and t.value == "x"

    def test_cannot_retrigger(self):
        env = CompiledEnvironment()
        t = env.timeout(0.0)
        with pytest.raises(EventAlreadyTriggered):
            t.succeed()
        with pytest.raises(EventAlreadyTriggered):
            t.fail(RuntimeError("nope"))

    def test_negative_delay_rejected(self):
        env = CompiledEnvironment()
        with pytest.raises(ValueError, match="negative delay"):
            env.timeout(-1.0)
        assert env.peek() == float("inf")

    def test_direct_instantiation_blocked(self):
        from repro.sim.backend import CTimeout
        with pytest.raises(TypeError):
            CTimeout()

    def test_yieldable_from_a_process(self):
        env = CompiledEnvironment()
        seen = []

        def proc():
            got = yield env.timeout(0.25, value="tick")
            seen.append((env.now, got))

        env.process(proc())
        env.run()
        assert seen == [(0.25, "tick")]

    def test_timeout_freelist_reuse_counted(self):
        env = CompiledEnvironment(fastlane=True)

        def ticker():
            for _ in range(50):
                yield env.timeout(0.01)

        env.process(ticker())
        env.run()
        stats = env.kernel_stats()
        assert stats["pool_hits"] > 0
        assert stats["pool_reuse_rate"] > 0.5
