"""Kernel support for sharded execution: schedule_at and run_window."""

import pytest

from repro.sim import Environment


def test_schedule_at_fires_at_absolute_time():
    env = Environment()
    seen = []
    carrier = env.event()
    carrier._triggered = True
    carrier._ok = True
    carrier._value = "payload"
    carrier.callbacks.append(lambda ev: seen.append((env.now, ev._value)))
    env.schedule_at(carrier, 1.5)
    env.run(until=2.0)
    assert seen == [(1.5, "payload")]


def test_schedule_at_rejects_the_past():
    env = Environment()
    env.run(until=1.0)
    ev = env.event()
    ev._triggered = True
    with pytest.raises(ValueError):
        env.schedule_at(ev, 0.5)


def test_run_window_strict_upper_bound():
    env = Environment()
    fired = []

    def note(tag):
        return lambda ev: fired.append(tag)

    for when, tag in [(0.9, "before"), (1.0, "at"), (1.1, "after")]:
        ev = env.event()
        ev._triggered = True
        ev.callbacks.append(note(tag))
        env.schedule_at(ev, when)
    env.run_window(1.0)
    assert fired == ["before"]
    env.run_window(1.2)
    assert fired == ["before", "at", "after"]


def test_run_window_allows_injection_at_the_boundary():
    # the clock must not advance past the last processed event, so a
    # message arriving exactly at the window bound is still schedulable
    env = Environment()
    ev = env.event()
    ev._triggered = True
    env.schedule_at(ev, 0.4)
    env.run_window(1.0)
    assert env.now == 0.4
    late = env.event()
    late._triggered = True
    env.schedule_at(late, 1.0)  # would raise if now had jumped to 1.0
    fired = []
    late.callbacks.append(lambda _ev: fired.append(env.now))
    env.run_window(1.5)
    assert fired == [1.0]


def test_windowed_run_equals_single_run():
    def trace_of(windowed):
        env = Environment()
        log = []

        def ticker(period, tag):
            while True:
                yield env.timeout(period)
                log.append((env.now, tag))

        env.process(ticker(0.3, "a"))
        env.process(ticker(0.7, "b"))
        if windowed:
            bound = 0.0
            while bound < 5.0:
                bound = min(bound + 0.25, 5.0)
                env.run_window(bound)
            env.run(until=5.0)
        else:
            env.run(until=5.0)
        return log, env.now

    assert trace_of(False) == trace_of(True)
