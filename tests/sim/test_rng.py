"""Tests for deterministic named RNG streams."""

from repro.sim import RngStreams, derive_seed


def test_derive_seed_stable():
    assert derive_seed(42, "x") == derive_seed(42, "x")


def test_derive_seed_differs_by_name_and_seed():
    assert derive_seed(42, "a") != derive_seed(42, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_py_streams_reproducible_across_factories():
    a = RngStreams(7).py_stream("client.0")
    b = RngStreams(7).py_stream("client.0")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_py_streams_independent_by_name():
    streams = RngStreams(7)
    a = streams.py_stream("client.0")
    b = streams.py_stream("client.1")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_streams_cached_by_name():
    streams = RngStreams(0)
    assert streams.py_stream("x") is streams.py_stream("x")
    assert streams.np_stream("x") is streams.np_stream("x")


def test_np_streams_reproducible():
    a = RngStreams(3).np_stream("gen")
    b = RngStreams(3).np_stream("gen")
    assert list(a.random(4)) == list(b.random(4))


def test_creation_order_does_not_matter():
    s1 = RngStreams(9)
    first_then_second = s1.py_stream("one").random()
    s2 = RngStreams(9)
    s2.py_stream("two")  # created in a different order
    second_factory_value = s2.py_stream("one").random()
    assert first_then_second == second_factory_value


def test_spawn_gives_independent_child():
    parent = RngStreams(5)
    child = parent.spawn("sub")
    assert parent.py_stream("x").random() != child.py_stream("x").random()
    # but the spawn itself is deterministic
    again = RngStreams(5).spawn("sub")
    assert child.py_stream("y").random() == again.py_stream("y").random()
