"""Unit tests for generator-coroutine processes."""

import pytest

from repro.sim import Environment, Interrupt


def test_process_runs_and_returns_value():
    env = Environment()

    def body():
        yield env.timeout(1.0)
        yield env.timeout(2.0)
        return "finished"

    proc = env.process(body())
    assert env.run(until=proc) == "finished"
    assert env.now == 3.0


def test_process_receives_timeout_value():
    env = Environment()
    seen = []

    def body():
        value = yield env.timeout(1.0, value="payload")
        seen.append(value)

    env.process(body())
    env.run()
    assert seen == ["payload"]


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_yield_non_event_fails_process():
    env = Environment()

    def body():
        yield 42  # type: ignore[misc]

    proc = env.process(body())
    with pytest.raises(TypeError, match="must yield Event"):
        env.run(until=proc)


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def failing():
        yield env.timeout(1.0)
        raise ValueError("inner")

    def waiter():
        try:
            yield env.process(failing())
        except ValueError as exc:
            return f"caught {exc}"

    proc = env.process(waiter())
    assert env.run(until=proc) == "caught inner"


def test_unwaited_process_exception_surfaces():
    env = Environment()

    def failing():
        yield env.timeout(1.0)
        raise ValueError("uncaught")

    env.process(failing())
    with pytest.raises(ValueError, match="uncaught"):
        env.run()


def test_process_waits_on_another_process():
    env = Environment()
    log = []

    def child():
        yield env.timeout(2.0)
        log.append(("child", env.now))
        return 99

    def parent():
        result = yield env.process(child())
        log.append(("parent", env.now, result))

    env.process(parent())
    env.run()
    assert log == [("child", 2.0), ("parent", 2.0, 99)]


def test_process_yield_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed("pre")
    env.run()

    def body():
        value = yield ev
        return value

    proc = env.process(body())
    assert env.run(until=proc) == "pre"


def test_two_processes_interleave_deterministically():
    env = Environment()
    log = []

    def worker(name, delay):
        for _ in range(3):
            yield env.timeout(delay)
            log.append((name, env.now))

    env.process(worker("a", 1.0))
    env.process(worker("b", 1.5))
    env.run()
    # At t=3.0 both are due; b's timeout was scheduled earlier (at t=1.5)
    # than a's (at t=2.0), so FIFO tie-breaking runs b first.
    assert log == [("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0),
                   ("a", 3.0), ("b", 4.5)]


def test_interrupt_wakes_sleeping_process():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100.0)
            log.append("overslept")
        except Interrupt as intr:
            log.append(("interrupted", env.now, intr.cause))

    proc = env.process(sleeper())

    def interrupter():
        yield env.timeout(1.0)
        proc.interrupt(cause="wakeup")

    env.process(interrupter())
    env.run()
    assert log == [("interrupted", 1.0, "wakeup")]


def test_interrupt_finished_process_is_error():
    env = Environment()

    def body():
        yield env.timeout(1.0)

    proc = env.process(body())
    env.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_process_is_alive_lifecycle():
    env = Environment()

    def body():
        yield env.timeout(1.0)

    proc = env.process(body())
    assert proc.is_alive
    env.run()
    assert not proc.is_alive


def test_interrupted_process_can_continue_and_finish():
    env = Environment()

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(5.0)
        return "done late"

    proc = env.process(sleeper())

    def interrupter():
        yield env.timeout(2.0)
        proc.interrupt()

    env.process(interrupter())
    assert env.run(until=proc) == "done late"
    assert env.now == 7.0
