"""Golden tests that keep the kernel hot paths honest.

The optimised calendar (packed ``priority|seq`` heap keys, the Timeout
construction fast path, the inlined ``run`` loop) must preserve the
kernel's ordering contract exactly: FIFO at equal ``(time, priority)``,
URGENT before NORMAL at equal times, and ``run(until=...)`` semantics.
A fixed-seed golden event-order test pins the full interleaving.

Every test runs against **both** kernel backends (the pure-python
reference and the compiled C calendar) via the ``make_env`` fixture; the
compiled half skips cleanly when the extension is not built.
"""

import random

import pytest

from repro.sim import CompiledEnvironment, Environment, NORMAL, URGENT
from repro.sim.backend import compiled_viable

BACKENDS = [
    pytest.param(Environment, id="reference"),
    pytest.param(CompiledEnvironment, id="compiled",
                 marks=pytest.mark.skipif(
                     not compiled_viable(),
                     reason="compiled kernel extension not built "
                            "(python tools/build_kernel.py)")),
]


@pytest.fixture(params=BACKENDS)
def make_env(request):
    """Backend-parametrized Environment factory: same surface, both kernels."""
    return request.param


def test_event_order_at_equal_time_and_priority_is_fifo(make_env):
    env = make_env()
    order = []
    events = []
    for i in range(8):
        ev = env.event()
        ev.callbacks.append(lambda _e, i=i: order.append(i))
        events.append(ev)
    # Trigger in a scrambled but deterministic order: processing order must
    # follow *trigger* (schedule) order, not creation order.
    for i in (3, 0, 5, 1, 7, 2, 6, 4):
        events[i].succeed()
    env.run()
    assert order == [3, 0, 5, 1, 7, 2, 6, 4]


def test_urgent_beats_normal_at_equal_time_regardless_of_sequence(make_env):
    env = make_env()
    order = []
    normal_first = env.event()
    normal_first.callbacks.append(lambda _e: order.append("normal"))
    urgent_later = env.event()
    urgent_later.callbacks.append(lambda _e: order.append("urgent"))
    normal_first.succeed(priority=NORMAL)   # scheduled first
    urgent_later.succeed(priority=URGENT)   # but higher priority
    env.run()
    assert order == ["urgent", "normal"]


def test_timeout_fast_path_preserves_fifo_with_succeed_events(make_env):
    """Timeouts and succeed()-triggered events share one sequence counter."""
    env = make_env()
    order = []
    t1 = env.timeout(0.0)
    t1.callbacks.append(lambda _e: order.append("timeout1"))
    ev = env.event()
    ev.callbacks.append(lambda _e: order.append("event"))
    ev.succeed()
    t2 = env.timeout(0.0)
    t2.callbacks.append(lambda _e: order.append("timeout2"))
    env.run()
    assert order == ["timeout1", "event", "timeout2"]


def test_timeout_fast_path_attributes_match_generic_event(make_env):
    env = make_env()
    t = env.timeout(1.5, value="payload")
    assert t.triggered and not t.processed
    assert t.ok
    assert t.value == "payload"
    assert t.delay == 1.5
    assert t.env is env
    env.run()
    assert t.processed


def test_mixed_priorities_and_times_golden_order(make_env):
    """Fixed-seed golden interleaving across times, priorities and FIFO."""
    rng = random.Random(1234)
    env = make_env()
    order = []
    expected = []
    for i in range(200):
        delay = rng.choice([0.0, 0.5, 0.5, 1.0, 2.5])
        ev = env.timeout(delay)
        ev.callbacks.append(lambda _e, i=i, d=delay: order.append((d, i)))
        expected.append((delay, i))
    env.run()
    # Stable sort by time reproduces time-major, FIFO-minor order.
    assert order == sorted(expected, key=lambda pair: pair[0])
    assert env.now == 2.5


def test_step_matches_inlined_run_loop(make_env):
    """Single-stepping and run() must process identical event orders."""

    def build():
        env = make_env()
        log = []
        for i in range(6):
            t = env.timeout(float(i % 3))
            t.callbacks.append(lambda _e, i=i: log.append(i))
        return env, log

    env_a, log_a = build()
    env_a.run()

    env_b, log_b = build()
    while env_b.peek() != float("inf"):
        env_b.step()
    assert log_a == log_b
    assert env_a.now == env_b.now


def test_run_until_time_boundary_inclusive_and_clock_clamped(make_env):
    env = make_env()
    hits = []
    for d in (1.0, 2.0, 3.0):
        t = env.timeout(d)
        t.callbacks.append(lambda _e, d=d: hits.append(d))
    env.run(until=2.0)
    assert hits == [1.0, 2.0]
    assert env.now == 2.0
    env.run(until=2.0)  # idempotent: nothing due, clock unchanged
    assert env.now == 2.0
    env.run()
    assert hits == [1.0, 2.0, 3.0]


def test_golden_event_order_fixed_seed_process_workload(make_env):
    """End-to-end golden trace: processes + resources on a fixed seed.

    Guards the whole kernel (Timeout fast path, packed keys, inlined run
    loop, Process._resume) against ordering regressions: the trace below
    was recorded from the pre-optimisation kernel and must never change —
    on either backend.

    Pinned to ``fastlane=False``: the fast lane intentionally resumes a
    contended waiter synchronously inside ``release()`` (got-before-rel
    at the same instant); its own golden trace lives in
    ``test_fastlane_golden.py`` alongside the proof that final states
    match the reference.
    """
    from repro.sim import Resource

    env = make_env(fastlane=False)
    trace = []
    server = Resource(env, capacity=1)
    rng = random.Random(7)
    delays = [round(rng.uniform(0.0, 0.03), 4) for _ in range(9)]

    def worker(wid, think):
        yield env.timeout(think)
        trace.append(("req", wid, round(env.now, 4)))
        req = server.request()
        yield req
        trace.append(("got", wid, round(env.now, 4)))
        yield env.timeout(0.01)
        server.release()
        trace.append(("rel", wid, round(env.now, 4)))

    for wid, think in enumerate(delays[:3]):
        env.process(worker(wid, think))
    env.run()

    assert trace == [
        ("req", 1, 0.0045), ("got", 1, 0.0045),
        ("req", 0, 0.0097),
        ("rel", 1, 0.0145), ("got", 0, 0.0145),
        ("req", 2, 0.0195),
        ("rel", 0, 0.0245), ("got", 2, 0.0245),
        ("rel", 2, 0.0345),
    ]


def test_any_of_settled_but_unprocessed_event_short_circuits(make_env):
    """An already-triggered, due-now event wins immediately (in input order),
    exactly like an already-processed one."""
    env = make_env()
    pending = env.event()
    settled = env.event()
    settled.succeed("settled-now")  # triggered, callbacks not yet dispatched
    combined = env.any_of([pending, settled])
    assert combined.triggered  # no waiting for callback dispatch
    assert env.run(until=combined) == "settled-now"


def test_any_of_first_settled_in_input_order_wins(make_env):
    env = make_env()
    a = env.event()
    b = env.event()
    a.succeed("a")
    b.succeed("b")  # both due now; input order decides
    assert env.run(until=env.any_of([b, a])) == "b"
    env2 = make_env()
    a2, b2 = env2.event(), env2.event()
    a2.succeed("a")
    b2.succeed("b")
    assert env2.run(until=env2.any_of([a2, b2])) == "a"


def test_any_of_future_timeout_does_not_short_circuit(make_env):
    """A Timeout is born triggered but is *pending* until its due time."""
    env = make_env()
    slow = env.timeout(5.0, value="slow")
    fast = env.timeout(1.0, value="fast")
    combined = env.any_of([slow, fast])
    assert not combined.triggered
    assert env.run(until=combined) == "fast"
    assert env.now == 1.0


def test_all_of_settled_but_unprocessed_events_contribute_immediately(
        make_env):
    env = make_env()
    a = env.event()
    b = env.event()
    a.succeed("a")
    b.succeed("b")
    combined = env.all_of([a, b])
    assert combined.triggered  # settled at construction, values in order
    assert env.run(until=combined) == ["a", "b"]


def test_all_of_mixes_settled_and_future_events(make_env):
    env = make_env()
    now_ev = env.event()
    now_ev.succeed("now")
    later = env.timeout(2.0, value="later")
    combined = env.all_of([later, now_ev])
    assert not combined.triggered
    assert env.run(until=combined) == ["later", "now"]
    assert env.now == 2.0


def test_zero_delay_timeout_counts_as_due_now_for_any_of(make_env):
    env = make_env()
    t = env.timeout(0.0, value="zero")
    combined = env.any_of([t, env.timeout(1.0)])
    assert combined.triggered
    assert env.run(until=combined) == "zero"


def test_schedule_rejects_nothing_but_keeps_fifo_counter_monotonic(make_env):
    env = make_env()
    before = env._seq
    env.timeout(0.0)
    ev = env.event()
    ev.succeed()
    assert env._seq == before + 2
    env.run()


def test_negative_timeout_still_rejected_by_fast_path(make_env):
    env = make_env()
    with pytest.raises(ValueError, match="negative delay"):
        env.timeout(-0.1)
    assert env.peek() == float("inf")  # nothing leaked onto the calendar
