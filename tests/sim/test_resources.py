"""Unit tests for Resource (FIFO servers) and Store (blocking buffer)."""

import pytest

from repro.sim import Environment, Resource, Store


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_grants_immediately_when_free():
    env = Environment()
    res = Resource(env, capacity=2)
    granted = []

    def body():
        yield res.request()
        granted.append(env.now)

    env.process(body())
    env.run()
    assert granted == [0.0]
    assert res.in_use == 1


def test_resource_fifo_queueing():
    # Reference kernel: the fast lane hands a released slot to the waiter
    # synchronously inside release(), which reorders the same-instant log
    # lines below (see tests/sim/test_fastlane_golden.py for that trace).
    env = Environment(fastlane=False)
    res = Resource(env, capacity=1)
    log = []

    def worker(name, hold):
        yield res.request()
        log.append((name, "start", env.now))
        yield env.timeout(hold)
        res.release()
        log.append((name, "end", env.now))

    env.process(worker("first", 2.0))
    env.process(worker("second", 1.0))
    env.process(worker("third", 1.0))
    env.run()
    assert log == [
        ("first", "start", 0.0),
        ("first", "end", 2.0),
        ("second", "start", 2.0),
        ("second", "end", 3.0),
        ("third", "start", 3.0),
        ("third", "end", 4.0),
    ]


def test_resource_multiple_servers_run_concurrently():
    env = Environment()
    res = Resource(env, capacity=2)
    ends = []

    def worker(hold):
        yield res.request()
        yield env.timeout(hold)
        res.release()
        ends.append(env.now)

    for _ in range(4):
        env.process(worker(1.0))
    env.run()
    # Two at a time: pairs finish at t=1 and t=2.
    assert ends == [1.0, 1.0, 2.0, 2.0]


def test_resource_release_without_request_raises():
    env = Environment()
    res = Resource(env)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_use_helper_releases_on_completion():
    env = Environment()
    res = Resource(env, capacity=1)

    def body():
        yield from res.use(3.0)

    proc = env.process(body())
    env.run(until=proc)
    assert env.now == 3.0
    assert res.in_use == 0


def test_resource_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    first = res.request()
    assert first.triggered
    second = res.request()
    assert not second.triggered
    assert res.cancel(second) is True
    assert res.cancel(second) is False
    res.release()
    env.run()
    assert res.in_use == 0
    assert res.queue_length == 0


def test_resource_cancel_granted_request_is_a_noop():
    """Cancel only withdraws *queued* requests: a granted one was already
    removed from the wait queue, so cancel returns False and the slot stays
    held until release()."""
    env = Environment()
    res = Resource(env, capacity=1)
    granted = res.request()
    assert granted.triggered
    assert res.cancel(granted) is False
    assert res.in_use == 1
    res.release()
    assert res.in_use == 0


def test_resource_queue_length_tracks_waiters():
    env = Environment()
    res = Resource(env, capacity=1)
    res.request()
    res.request()
    res.request()
    assert res.queue_length == 2


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    store.put("x")
    got = []

    def body():
        item = yield store.get()
        got.append(item)

    env.process(body())
    env.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, env.now))

    def producer():
        yield env.timeout(5.0)
        store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [("late", 5.0)]


def test_store_fifo_ordering_of_items():
    env = Environment()
    store = Store(env)
    for i in range(3):
        store.put(i)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(consumer())
    env.run()
    assert got == [0, 1, 2]


def test_store_fifo_ordering_of_getters():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(name):
        item = yield store.get()
        got.append((name, item))

    env.process(consumer("a"))
    env.process(consumer("b"))

    def producer():
        yield env.timeout(1.0)
        store.put(1)
        store.put(2)

    env.process(producer())
    env.run()
    assert got == [("a", 1), ("b", 2)]


def test_store_interleaved_getters_and_putters():
    """Mixed buffered items and blocked getters: every handover pairs the
    oldest getter with the oldest item, in both kernel modes."""
    for fastlane in (False, True):
        env = Environment(fastlane=fastlane)
        store = Store(env)
        got = []

        def consumer(name, delay, env=env, store=store, got=got):
            yield env.timeout(delay)
            item = yield store.get()
            got.append((name, item, env.now))

        def producer(env=env, store=store):
            store.put("pre")          # buffered before any getter exists
            yield env.timeout(1.0)
            store.put("at1")          # wakes the blocked "b"
            yield env.timeout(1.0)
            store.put("at2a")         # buffered: nobody waiting yet
            store.put("at2b")
            yield env.timeout(1.0)

        env.process(consumer("a", 0.5))   # finds "pre" buffered
        env.process(consumer("b", 0.7))   # blocks until t=1
        env.process(consumer("c", 2.5))   # finds "at2a" buffered
        env.process(consumer("d", 2.6))   # finds "at2b" buffered
        env.process(producer())
        env.run()
        assert got == [("a", "pre", 0.5), ("b", "at1", 1.0),
                       ("c", "at2a", 2.5), ("d", "at2b", 2.6)], fastlane
        assert len(store) == 0


def test_store_get_nowait_drains_without_blocking():
    env = Environment()
    store = Store(env)
    assert store.get_nowait() is None
    store.put("a")
    store.put("b")
    assert store.get_nowait() == "a"
    assert store.get_nowait() == "b"
    assert store.get_nowait() is None


def test_store_len_counts_buffered_items():
    env = Environment()
    store = Store(env)
    assert len(store) == 0
    store.put("a")
    store.put("b")
    assert len(store) == 2
