"""Seed-splitting guarantees that sharded execution leans on.

Every client's stream is derived statelessly from ``(master_seed,
"client.<i>")``, so a worker that builds only its own clients draws
exactly the bits the serial build would have handed those clients — no
matter how many shards exist or which process asks.
"""

import multiprocessing

import pytest

from repro.sim.rng import RngStreams, derive_seed


class TestShardInvariance:
    def test_streams_do_not_depend_on_construction_order(self):
        # shard 0 builds clients {0, 2}, shard 1 builds {1, 3}; a serial
        # run builds all four in order — every stream must agree
        serial = RngStreams(42)
        shard0 = RngStreams(42)
        shard1 = RngStreams(42)
        draws = {i: [serial.py_stream(f"client.{i}").random()
                     for _ in range(32)] for i in range(4)}
        for i in (0, 2):
            assert [shard0.py_stream(f"client.{i}").random()
                    for _ in range(32)] == draws[i]
        for i in (1, 3):
            assert [shard1.py_stream(f"client.{i}").random()
                    for _ in range(32)] == draws[i]

    def test_skipping_streams_perturbs_nothing(self):
        # materializing a subset of named streams never shifts the others
        full = RngStreams(7)
        sparse = RngStreams(7)
        _ = [full.py_stream(f"client.{i}") for i in range(16)]
        assert (sparse.py_stream("client.15").random()
                == full.py_stream("client.15").random())


class TestCollisions:
    def test_no_seed_collisions_across_names(self):
        names = [f"client.{i}" for i in range(512)]
        names += [f"source.{i}" for i in range(512)]
        names += ["snapshot.tree", "snapshot.names", "balance"]
        seeds = {derive_seed(42, name) for name in names}
        assert len(seeds) == len(names)

    def test_distinct_masters_distinct_streams(self):
        a = RngStreams(1).py_stream("client.0").random()
        b = RngStreams(2).py_stream("client.0").random()
        assert a != b


def _worker_draws(args):
    seed, name, n = args
    stream = RngStreams(seed).py_stream(name)
    return [stream.random() for _ in range(n)]


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs fork to mirror the shard workers")
class TestProcessBoundary:
    def test_deterministic_across_fork(self):
        local = _worker_draws((42, "client.3", 64))
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(2) as pool:
            remote = pool.map(_worker_draws,
                              [(42, "client.3", 64)] * 2)
        assert remote[0] == remote[1] == local
