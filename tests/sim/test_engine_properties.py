"""Property-based tests for the event calendar's ordering guarantees."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sim import Environment


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=40))
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []
    for delay in delays:
        t = env.timeout(delay)
        t.callbacks.append(lambda ev, d=delay: fired.append((env.now, d)))
    env.run()
    times = [t for t, _d in fired]
    assert times == sorted(times)
    assert sorted(d for _t, d in fired) == sorted(delays)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 5), min_size=1, max_size=30))
def test_equal_time_events_fire_fifo(tags):
    env = Environment()
    fired = []
    for i, _tag in enumerate(tags):
        t = env.timeout(1.0)
        t.callbacks.append(lambda ev, i=i: fired.append(i))
    env.run()
    assert fired == list(range(len(tags)))


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0.01, max_value=5.0),
                          st.integers(1, 4)),
                min_size=1, max_size=12))
def test_process_completion_times_are_exact(specs):
    env = Environment()
    results = {}

    def worker(name, delay, hops):
        for _ in range(hops):
            yield env.timeout(delay)
        results[name] = env.now

    for i, (delay, hops) in enumerate(specs):
        env.process(worker(i, delay, hops))
    env.run()
    for i, (delay, hops) in enumerate(specs):
        assert abs(results[i] - delay * hops) < 1e-9


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 6), st.lists(st.floats(min_value=0.01, max_value=1.0),
                                   min_size=1, max_size=15))
def test_resource_conservation(capacity, holds):
    """A FIFO resource never exceeds capacity and serves everyone."""
    from repro.sim import Resource

    env = Environment()
    res = Resource(env, capacity=capacity)
    served = []
    peak = [0]

    def worker(i, hold):
        yield res.request()
        peak[0] = max(peak[0], res.in_use)
        yield env.timeout(hold)
        res.release()
        served.append(i)

    for i, hold in enumerate(holds):
        env.process(worker(i, hold))
    env.run()
    assert len(served) == len(holds)
    assert peak[0] <= capacity
