"""Unit tests for the event calendar and clock."""

import pytest

from repro.sim import Environment, EventAlreadyTriggered


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(3.5)
    env.run()
    assert env.now == 3.5


def test_timeouts_fire_in_order():
    env = Environment()
    order = []
    for delay in (3.0, 1.0, 2.0):
        t = env.timeout(delay)
        t.callbacks.append(lambda ev, d=delay: order.append(d))
    env.run()
    assert order == [1.0, 2.0, 3.0]


def test_equal_time_fifo_order():
    env = Environment()
    order = []
    for i in range(5):
        t = env.timeout(1.0)
        t.callbacks.append(lambda ev, i=i: order.append(i))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_run_until_time_stops_clock_exactly():
    env = Environment()
    env.timeout(10.0)
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_time_processes_events_at_boundary():
    env = Environment()
    hits = []
    t = env.timeout(4.0)
    t.callbacks.append(lambda ev: hits.append(env.now))
    env.run(until=4.0)
    assert hits == [4.0]


def test_run_until_past_time_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_run_until_event_returns_value():
    env = Environment()
    ev = env.event()
    t = env.timeout(2.0)
    t.callbacks.append(lambda _: ev.succeed("done"))
    assert env.run(until=ev) == "done"
    assert env.now == 2.0


def test_run_until_event_raises_on_failure():
    env = Environment()
    ev = env.event()
    t = env.timeout(1.0)
    t.callbacks.append(lambda _: ev.fail(RuntimeError("boom")))
    with pytest.raises(RuntimeError, match="boom"):
        env.run(until=ev)


def test_run_until_event_never_triggering_is_error():
    env = Environment()
    ev = env.event()
    env.timeout(1.0)
    with pytest.raises(RuntimeError, match="exhausted"):
        env.run(until=ev)


def test_run_until_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed(7)
    env.run()  # processes the event
    assert env.run(until=ev) == 7


def test_event_double_succeed_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(EventAlreadyTriggered):
        ev.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_unhandled_failed_event_raises_from_run():
    env = Environment()
    ev = env.event()
    ev.fail(ValueError("nobody caught me"))
    with pytest.raises(ValueError, match="nobody caught me"):
        env.run()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(2.5)
    env.timeout(1.5)
    assert env.peek() == 1.5


def test_all_of_collects_values_in_order():
    env = Environment()
    a = env.timeout(2.0, value="a")
    b = env.timeout(1.0, value="b")
    combined = env.all_of([a, b])
    assert env.run(until=combined) == ["a", "b"]
    assert env.now == 2.0


def test_all_of_empty_succeeds_immediately():
    env = Environment()
    combined = env.all_of([])
    assert env.run(until=combined) == []


def test_all_of_fails_on_first_failure():
    env = Environment()
    a = env.timeout(5.0, value="a")
    bad = env.event()
    t = env.timeout(1.0)
    t.callbacks.append(lambda _: bad.fail(KeyError("x")))
    combined = env.all_of([a, bad])
    with pytest.raises(KeyError):
        env.run(until=combined)


def test_any_of_settles_with_first():
    env = Environment()
    a = env.timeout(2.0, value="slow")
    b = env.timeout(1.0, value="fast")
    combined = env.any_of([a, b])
    assert env.run(until=combined) == "fast"
    assert env.now == 1.0
    env.run()  # drain the slower timeout; must not blow up


def test_any_of_with_already_processed_event():
    env = Environment()
    done = env.event()
    done.succeed("early")
    env.run()
    combined = env.any_of([done, env.timeout(9.0)])
    assert env.run(until=combined) == "early"
