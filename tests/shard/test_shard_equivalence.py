"""Sharded execution must be invisible to results.

The repro.shard equivalence contract, in the style of the fast-lane and
serial/parallel suites: a fixed-seed experiment run sharded across forked
processes produces a summary whose ``repr`` is byte-identical to the
serial run's — in both fast-lane modes, for any viable shard count.
"""

import os

import pytest

from repro._fastpath import FASTPATH_ENV
from repro.api import (SHARDS_ENV, ShardingUnsupported, build_simulation,
                       run_sharded_summary, run_steady_state,
                       shard_viability, sharded_config)
from repro.sim.backend import KERNEL_ENV, compiled_viable

pytestmark = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="sharding requires the fork start method")

KERNELS = [
    pytest.param("reference", id="reference"),
    pytest.param("compiled", id="compiled",
                 marks=pytest.mark.skipif(
                     not compiled_viable(),
                     reason="compiled kernel extension not built "
                            "(python tools/build_kernel.py)")),
]


def small_config(**kw):
    """A shardable config sized for CI: ~300 barrier rounds, 4 nodes."""
    defaults = dict(n_mds=4, scale=1.0, users_per_mds=8, clients_per_mds=8,
                    files_per_user=10, shared_tree_files=40,
                    warmup_s=0.25, duration_s=0.5, net_hop_s=0.0025)
    defaults.update(kw)
    return sharded_config(**defaults)


def serial_summary(cfg):
    sim = build_simulation(cfg)
    t0, t1 = cfg.measure_window
    sim.run_to(t1)
    return sim.summary(window=(t0, t1))


class TestBitIdentity:
    @pytest.mark.parametrize("n_shards", [2, 3])
    def test_sharded_summary_bit_identical(self, monkeypatch, n_shards):
        monkeypatch.delenv(SHARDS_ENV, raising=False)
        cfg = small_config()
        serial = serial_summary(cfg)
        merged = run_sharded_summary(cfg, n_shards)
        assert repr(serial) == repr(merged)
        # fields excluded from repr (overload accounting) must match too
        assert serial == merged

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_bit_identical_on_both_kernel_backends(self, monkeypatch, kernel):
        """The kernel-backend seam composes with sharding: the gate
        crosses the fork, every worker runs the selected calendar, and
        the merged summary still matches the serial run byte-for-byte."""
        monkeypatch.delenv(SHARDS_ENV, raising=False)
        monkeypatch.setenv(KERNEL_ENV, kernel)
        cfg = small_config()
        serial = serial_summary(cfg)
        merged = run_sharded_summary(cfg, 2)
        assert repr(serial) == repr(merged)
        assert serial == merged
        # provenance survives the merge (shard 0's copy stands)
        assert merged.kernel["kernel_backend"] == kernel

    def test_bit_identical_with_fastpath_off(self, monkeypatch):
        monkeypatch.setenv(FASTPATH_ENV, "0")
        cfg = small_config()
        serial = serial_summary(cfg)
        merged = run_sharded_summary(cfg, 2)
        assert repr(serial) == repr(merged)

    def test_sharded_run_does_real_cross_shard_work(self):
        cfg = small_config()
        merged = run_sharded_summary(cfg, 2)
        assert merged.total_ops > 0
        # shared-tree reads force replica fetches across the boundary —
        # the equivalence above is not vacuous isolation
        assert merged.kernel["messages_crossing_shards"] > 0

    def test_steady_state_env_gate(self, monkeypatch):
        cfg = small_config()
        monkeypatch.delenv(SHARDS_ENV, raising=False)
        serial = run_steady_state(cfg)
        monkeypatch.setenv(SHARDS_ENV, "2")
        sharded = run_steady_state(cfg)
        assert sharded == serial

    def test_steady_state_gate_falls_back_when_nonviable(self, monkeypatch):
        # a DynamicSubtree config is outside the shardable class: the
        # gate must silently take the serial path, not raise
        cfg = small_config().replace(strategy="DynamicSubtree")
        monkeypatch.setenv(SHARDS_ENV, "2")
        gated = run_steady_state(cfg)
        monkeypatch.delenv(SHARDS_ENV, raising=False)
        assert gated == run_steady_state(cfg)


class TestViability:
    def test_reference_config_is_viable(self):
        assert shard_viability(small_config(), 2) is None

    @pytest.mark.parametrize("mutate,needle", [
        (dict(strategy="DynamicSubtree"), "StaticSubtree"),
        (dict(trace_sample_rate=0.5), "sampling"),
        (dict(clients_per_mds=32), "clients"),
    ])
    def test_nonviable_reasons(self, mutate, needle):
        cfg = small_config().replace(**mutate)
        reason = shard_viability(cfg, 2)
        assert reason is not None and needle in reason

    def test_shard_count_bounds(self):
        cfg = small_config()
        assert "< 2" in shard_viability(cfg, 1)
        assert "exceeds" in shard_viability(cfg, cfg.n_mds + 1)

    def test_affinity_required(self):
        import dataclasses

        cfg = small_config()
        params = dataclasses.replace(cfg.params, shard_affinity=False)
        assert "affinity" in shard_viability(cfg.replace(params=params), 2)

    def test_run_sharded_summary_raises_loudly(self):
        cfg = small_config().replace(strategy="DynamicSubtree")
        with pytest.raises(ShardingUnsupported):
            run_sharded_summary(cfg, 2)


class TestPlan:
    def _plan(self, cfg, n_shards):
        from repro.experiments._build import _make_snapshot
        from repro.namespace import Namespace
        from repro.partition import make_strategy
        from repro.shard import compute_plan
        from repro.sim import RngStreams

        ns, snapshot = _make_snapshot(cfg, RngStreams(cfg.seed))
        strategy = make_strategy(cfg.strategy, cfg.n_mds)
        strategy.bind(ns)
        return compute_plan(cfg, ns, strategy, snapshot.user_roots,
                            n_shards)

    @pytest.mark.parametrize("n_shards", [2, 3, 4])
    def test_every_node_and_client_owned_once(self, n_shards):
        cfg = small_config()
        plan = self._plan(cfg, n_shards)
        seen = []
        for s in range(n_shards):
            seen.extend(plan.nodes_of(s))
        assert seen == list(range(cfg.n_mds))
        assert len(plan.client_shards) == cfg.n_clients
        assert set(plan.client_shards) <= set(range(n_shards))

    def test_contiguous_node_ranges(self):
        plan = self._plan(small_config(), 3)
        assert list(plan.bounds) == sorted(plan.bounds)
        for node in range(plan.n_mds):
            s = plan.shard_of_node[node]
            assert node in plan.nodes_of(s)

    def test_clients_homed_with_their_authority(self):
        cfg = small_config()
        from repro.experiments._build import _make_snapshot
        from repro.partition import make_strategy
        from repro.sim import RngStreams

        ns, snapshot = _make_snapshot(cfg, RngStreams(cfg.seed))
        strategy = make_strategy(cfg.strategy, cfg.n_mds)
        strategy.bind(ns)
        from repro.shard import compute_plan

        plan = compute_plan(cfg, ns, strategy, snapshot.user_roots, 2)
        n_users = len(snapshot.user_roots)
        for client_id, shard in enumerate(plan.client_shards):
            root = snapshot.user_roots[client_id % n_users]
            authority = strategy.authority_of_ino(ns.resolve(root).ino)
            assert plan.shard_of_node[authority] == shard
