"""Unit tests for op-mix sampling."""

import random
from collections import Counter

import pytest

from repro.clients import GENERAL_MIX, OpMix
from repro.mds import OpType


def test_empty_mix_rejected():
    with pytest.raises(ValueError):
        OpMix({})


def test_nonpositive_weights_rejected():
    with pytest.raises(ValueError):
        OpMix({OpType.OPEN: 0.0})


def test_single_op_always_sampled():
    mix = OpMix({OpType.STAT: 1.0})
    rng = random.Random(1)
    assert all(mix.sample(rng) is OpType.STAT for _ in range(20))


def test_sampling_matches_weights():
    mix = OpMix({OpType.OPEN: 3.0, OpType.STAT: 1.0})
    rng = random.Random(42)
    counts = Counter(mix.sample(rng) for _ in range(4000))
    ratio = counts[OpType.OPEN] / counts[OpType.STAT]
    assert 2.4 < ratio < 3.7


def test_general_mix_dominated_by_reads():
    mix = OpMix(GENERAL_MIX)
    rng = random.Random(7)
    counts = Counter(mix.sample(rng) for _ in range(5000))
    reads = counts[OpType.OPEN] + counts[OpType.STAT] + counts[OpType.CLOSE]
    mutations = (counts[OpType.CREATE] + counts[OpType.UNLINK]
                 + counts[OpType.RENAME] + counts[OpType.CHMOD])
    assert reads > 3 * mutations
    assert counts[OpType.RENAME] < 0.03 * sum(counts.values())


def test_sampling_deterministic_with_seed():
    mix = OpMix(GENERAL_MIX)
    a = [mix.sample(random.Random(5)) for _ in range(1)]
    b = [mix.sample(random.Random(5)) for _ in range(1)]
    assert a == b
