"""Open-loop load generators: determinism, rates, drop/SLO accounting."""

import pytest

from repro.experiments import ExperimentConfig, OpenLoopSpec, build_simulation


def open_cfg(arrival="poisson", rate=2000.0, **kw):
    spec = OpenLoopSpec(kind="general", arrival=arrival,
                        rate_ops_per_s=rate, sources=8)
    base = dict(n_mds=2, scale=0.25, workload=spec, warmup_s=0.2,
                duration_s=0.4, cache_capacity_per_mds=2000)
    base.update(kw)
    return ExperimentConfig(**base)


def run(cfg):
    sim = build_simulation(cfg)
    sim.run_to(cfg.run_until_s)
    return sim


class TestDeterminism:
    @pytest.mark.parametrize("arrival", ["poisson", "bursty"])
    def test_fixed_seed_runs_are_identical(self, arrival):
        a = run(open_cfg(arrival=arrival)).summary()
        b = run(open_cfg(arrival=arrival)).summary()
        assert repr(a) == repr(b)
        assert a.offered_ops == b.offered_ops
        assert a.dropped_ops == b.dropped_ops

    def test_different_seeds_differ(self):
        a = run(open_cfg()).summary()
        b = run(open_cfg(seed=7)).summary()
        assert a.offered_ops != b.offered_ops


class TestOfferedRate:
    def test_poisson_offered_matches_configured_rate(self):
        cfg = open_cfg(rate=2000.0)
        summary = run(cfg).summary()
        expected = 2000.0 * cfg.run_until_s
        # Poisson count over ~600 expected arrivals: 4 sigma ~ 10%
        assert summary.offered_ops == pytest.approx(expected, rel=0.10)

    def test_bursty_preserves_long_run_rate(self):
        # heavy-tailed on/off modulation conserves the mean rate, but the
        # variance of a short window is large: assert the right order of
        # magnitude, not the exact count
        cfg = open_cfg(arrival="bursty", rate=2000.0, duration_s=2.0)
        summary = run(cfg).summary()
        expected = 2000.0 * cfg.run_until_s
        assert 0.3 * expected < summary.offered_ops < 2.5 * expected

    def test_sources_never_block_on_replies(self):
        # a saturated 1-node cluster cannot slow the generators down:
        # offered load stays at the configured rate even while drops mount
        cfg = open_cfg(rate=8000.0, n_mds=1)
        summary = run(cfg).summary()
        assert summary.offered_ops == pytest.approx(
            8000.0 * cfg.run_until_s, rel=0.10)


class TestAccounting:
    def test_offered_splits_into_outcomes(self):
        sim = run(open_cfg())
        offered = sum(c.stats.offered for c in sim.clients)
        completed = sum(c.stats.ops_completed for c in sim.clients)
        dropped = sum(c.stats.dropped for c in sim.clients)
        # whatever was offered either completed, was dropped, or is still
        # in flight at the end of the run
        assert completed + dropped <= offered
        assert offered - (completed + dropped) < 200  # bounded in-flight

    def test_goodput_counts_only_within_slo(self):
        summary = run(open_cfg()).summary()
        window = summary.window[1] - summary.window[0]
        good = summary.goodput_ops_per_s * window
        assert 0 < good <= summary.offered_ops

    def test_slo_violations_appear_under_overload(self):
        spec = OpenLoopSpec(kind="general", rate_ops_per_s=9000.0,
                            sources=8, slo_latency_s=0.0005)
        summary = run(open_cfg().replace(workload=spec)).summary()
        assert summary.slo_violations > 0
