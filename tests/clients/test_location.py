"""Unit tests for the client location cache."""

import random

from repro.clients import LocationCache
from repro.mds import ANY_NODE


def test_root_known_initially():
    lc = LocationCache()
    prefix, loc = lc.deepest_known(("a", "b"))
    assert prefix == ()
    assert loc == ANY_NODE


def test_learn_and_deepest():
    lc = LocationCache()
    lc.learn(("home",), 2)
    lc.learn(("home", "alice"), 1)
    prefix, loc = lc.deepest_known(("home", "alice", "x.txt"))
    assert prefix == ("home", "alice")
    assert loc == 1
    prefix, loc = lc.deepest_known(("home", "bob"))
    assert prefix == ("home",)
    assert loc == 2


def test_learn_all():
    lc = LocationCache()
    lc.learn_all({("a",): 0, ("a", "b"): 1})
    assert lc.deepest_known(("a", "b"))[1] == 1
    assert len(lc) == 3  # root + 2


def test_forget_drops_prefix_but_never_root():
    lc = LocationCache()
    lc.learn(("a",), 3)
    lc.forget(("a",))
    assert lc.deepest_known(("a",)) == ((), ANY_NODE)
    lc.forget(())  # no-op
    assert lc.deepest_known(()) == ((), ANY_NODE)


def test_choose_destination_exact():
    lc = LocationCache()
    lc.learn(("a",), 3)
    rng = random.Random(0)
    assert lc.choose_destination(("a", "f"), rng, 8) == 3


def test_choose_destination_any_is_random_uniform():
    lc = LocationCache()
    rng = random.Random(0)
    picks = {lc.choose_destination(("x",), rng, 4) for _ in range(100)}
    assert picks == {0, 1, 2, 3}
