"""Tests for workload generators driving real clients against a cluster."""

import pytest

from repro.clients import (Client, FlashCrowdSpec, FlashCrowdWorkload,
                           GeneralWorkload, GeneralWorkloadSpec,
                           ScientificSpec, ScientificWorkload, ShiftSpec,
                           ShiftingWorkload)
from repro.mds import MdsCluster, OpType, SimParams
from repro.namespace import Namespace, SnapshotSpec, generate_snapshot
from repro.namespace import path as p
from repro.partition import make_strategy
from repro.sim import Environment, RngStreams


def build(strategy_name="DynamicSubtree", n_mds=3, seed=5, n_users=4,
          files_per_user=30, params=None):
    env = Environment()
    streams = RngStreams(seed)
    ns = Namespace()
    stats = generate_snapshot(
        ns, SnapshotSpec(n_users=n_users, files_per_user=files_per_user),
        streams)
    strat = make_strategy(strategy_name, n_mds)
    strat.bind(ns)
    cluster = MdsCluster(env, ns, strat, params or SimParams())
    cluster.start()
    return env, streams, ns, stats, cluster


def spawn_clients(env, streams, cluster, workload, n):
    clients = []
    for i in range(n):
        c = Client(env, i, cluster, workload, streams.py_stream(f"client.{i}"))
        c.start()
        clients.append(c)
    return clients


def total_ops(clients):
    return sum(c.stats.ops_completed for c in clients)


def test_general_workload_completes_ops():
    env, streams, ns, stats, cluster = build()
    wl = GeneralWorkload(ns, stats.user_roots,
                         GeneralWorkloadSpec(think_time_s=0.02))
    clients = spawn_clients(env, streams, cluster, wl, 8)
    env.run(until=3.0)
    assert total_ops(clients) > 100
    error_rate = sum(c.stats.errors for c in clients) / total_ops(clients)
    assert error_rate < 0.10


def test_general_workload_deterministic():
    def one_run():
        env, streams, ns, stats, cluster = build(seed=9)
        wl = GeneralWorkload(ns, stats.user_roots)
        clients = spawn_clients(env, streams, cluster, wl, 4)
        env.run(until=2.0)
        return total_ops(clients), len(ns)

    assert one_run() == one_run()


def test_general_workload_requires_roots():
    ns = Namespace()
    with pytest.raises(ValueError):
        GeneralWorkload(ns, [])


def test_general_clients_stay_in_their_home():
    env, streams, ns, stats, cluster = build()
    wl = GeneralWorkload(ns, stats.user_roots,
                         GeneralWorkloadSpec(shared_tree_prob=0.0))
    client = Client(env, 0, cluster, wl, streams.py_stream("c0"))
    home = wl.home_for(client)
    for _ in range(200):
        req = wl.next_op(client)
        if req is None:
            continue
        assert req.path[:len(home)] == home


def test_general_workload_creates_grow_namespace():
    env, streams, ns, stats, cluster = build()
    before = len(ns)
    wl = GeneralWorkload(ns, stats.user_roots,
                         GeneralWorkloadSpec(think_time_s=0.01))
    clients = spawn_clients(env, streams, cluster, wl, 6)
    env.run(until=3.0)
    assert len(ns) > before
    ns.verify_invariants()


def test_scientific_burst_targets_shared_file():
    env, streams, ns, stats, cluster = build()
    shared = stats.user_roots[0]
    wl = ScientificWorkload(ns, shared, ScientificSpec(phase_len_s=0.5))
    clients = spawn_clients(env, streams, cluster, wl, 10)
    env.run(until=0.4)  # inside phase 0: the read burst
    opens = [c for c in clients if c.stats.ops_completed > 0]
    assert len(opens) >= 8
    # the input file became the hottest item on its authority
    ino = ns.resolve(wl.input_file).ino
    authority = cluster.strategy.authority_of_ino(ino)
    assert cluster.nodes[authority].popularity.read(ino, env.now) > 5


def test_scientific_checkpoint_phase_creates_files():
    env, streams, ns, stats, cluster = build()
    shared = stats.user_roots[0]
    wl = ScientificWorkload(ns, shared, ScientificSpec(phase_len_s=0.3))
    spawn_clients(env, streams, cluster, wl, 6)
    env.run(until=1.2)  # covers phase 2 (creates)
    names = ns.readdir(shared)
    assert any(n.startswith("ckpt.") for n in names)


def test_scientific_rejects_missing_dir():
    ns = Namespace()
    with pytest.raises(ValueError):
        ScientificWorkload(ns, p.parse("/nope"))


def test_shifting_workload_migrates_half():
    env, streams, ns, stats, cluster = build()
    wl = ShiftingWorkload(ns, stats.user_roots,
                          ShiftSpec(shift_time_s=1.0, migrate_fraction=0.5))
    clients = spawn_clients(env, streams, cluster, wl, 20)
    migrating = [c for c in clients if wl.will_migrate(c)]
    assert 4 <= len(migrating) <= 16
    env.run(until=2.5)
    for c in migrating:
        state = c.scratch.get("general", {})
        assert state.get("migrated")
        assert state["home"] in wl.victim_roots


def test_shifting_workload_creates_in_victim_after_shift():
    env, streams, ns, stats, cluster = build()
    wl = ShiftingWorkload(ns, stats.user_roots,
                          ShiftSpec(shift_time_s=0.5, migrate_fraction=1.0))
    spawn_clients(env, streams, cluster, wl, 8)
    count_before = sum(ns.subtree_inode_count(ns.resolve(r).ino)
                       for r in wl.victim_roots)
    env.run(until=3.0)
    count_after = sum(ns.subtree_inode_count(ns.resolve(r).ino)
                      for r in wl.victim_roots)
    assert count_after > count_before


def test_flash_crowd_all_clients_hit_target():
    env, streams, ns, stats, cluster = build()
    target = None
    root = stats.user_roots[0]
    for name, ino in ns.resolve(root).children.items():
        if ns.inode(ino).is_file:
            target = root + (name,)
            break
    assert target is not None
    wl = FlashCrowdWorkload(ns, target,
                            FlashCrowdSpec(start_s=0.5,
                                           requests_per_client=2))
    clients = spawn_clients(env, streams, cluster, wl, 30)
    env.run(until=3.0)
    done = [c.stats.ops_completed for c in clients]
    assert all(d == 2 for d in done)


def test_flash_crowd_requires_existing_file():
    env, streams, ns, stats, cluster = build()
    with pytest.raises(ValueError):
        FlashCrowdWorkload(ns, p.parse("/missing.dat"))


def test_clients_learn_locations_under_subtree():
    env, streams, ns, stats, cluster = build("StaticSubtree")
    wl = GeneralWorkload(ns, stats.user_roots)
    clients = spawn_clients(env, streams, cluster, wl, 4)
    env.run(until=2.0)
    assert all(len(c.locations) > 1 for c in clients)


def test_forwards_decline_as_clients_learn():
    env, streams, ns, stats, cluster = build("StaticSubtree")
    wl = GeneralWorkload(ns, stats.user_roots,
                         GeneralWorkloadSpec(think_time_s=0.01))
    clients = spawn_clients(env, streams, cluster, wl, 6)
    env.run(until=1.0)
    early = sum(s.forwards for s in cluster.node_stats())
    early_ops = total_ops(clients)
    env.run(until=4.0)
    late = sum(s.forwards for s in cluster.node_stats()) - early
    late_ops = total_ops(clients) - early_ops
    assert late / max(1, late_ops) < early / max(1, early_ops)


def test_hash_clients_never_forwarded_without_renames():
    env, streams, ns, stats, cluster = build("FileHash")
    spec = GeneralWorkloadSpec(think_time_s=0.01)
    spec.op_weights = {OpType.OPEN: 0.5, OpType.STAT: 0.5}
    wl = GeneralWorkload(ns, stats.user_roots, spec)
    clients = spawn_clients(env, streams, cluster, wl, 5)
    env.run(until=2.0)
    assert sum(s.forwards for s in cluster.node_stats()) == 0
    assert total_ops(clients) > 50
