"""Statistical validation of the general-purpose workload generator.

The figure results depend on the generator actually exhibiting the
properties it claims (§5.2): op frequencies matching the configured mix,
strong directory locality, and occasional shared-tree accesses.  These
tests sample a large number of generated operations offline (no cluster)
and verify the distributions.
"""

from collections import Counter

import pytest

from repro.clients import (Client, GENERAL_MIX, GeneralWorkload,
                           GeneralWorkloadSpec)
from repro.mds import OpType
from repro.namespace import Namespace, SnapshotSpec, generate_snapshot
from repro.namespace import path as pathmod
from repro.sim import Environment, RngStreams


class _Probe:
    """A minimal stand-in for the cluster a Client normally needs."""

    class _Strategy:
        def client_locate(self, path, dir_hint=False):
            return 0

    strategy = _Strategy()
    n_mds = 1


def sample_ops(n=4000, spec=None, seed=3, n_clients=8):
    env = Environment()
    streams = RngStreams(seed)
    ns = Namespace()
    snapshot = generate_snapshot(
        ns, SnapshotSpec(n_users=8, files_per_user=60), streams)
    wl = GeneralWorkload(ns, snapshot.user_roots,
                         spec or GeneralWorkloadSpec())
    clients = [Client(env, i, _Probe(), wl, streams.py_stream(f"c{i}"))
               for i in range(n_clients)]
    ops = []
    i = 0
    while len(ops) < n:
        client = clients[i % n_clients]
        i += 1
        req = wl.next_op(client)
        if req is not None:
            ops.append(req)
            if req.op is OpType.OPEN:
                client.last_opened = req.path
    return ns, wl, clients, ops


def test_op_frequencies_track_the_mix():
    ns, wl, clients, ops = sample_ops(6000)
    counts = Counter(op.op for op in ops)
    total = sum(counts.values())
    # reads dominate roughly per GENERAL_MIX (stat bursts after readdir
    # legitimately inflate STAT above its base weight)
    assert counts[OpType.STAT] / total > GENERAL_MIX[OpType.STAT] * 0.8
    assert counts[OpType.OPEN] / total > 0.5 * GENERAL_MIX[OpType.OPEN]
    # rare mutations stay rare
    assert counts[OpType.RENAME] / total < 0.03
    assert counts[OpType.CHMOD] / total < 0.03
    assert counts[OpType.LINK] / total < 0.03


def test_directory_locality():
    ns, wl, clients, ops = sample_ops(4000)
    # consecutive ops from the same client mostly share a directory
    per_client = {}
    same = total = 0
    for op in ops:
        prev = per_client.get(op.client_id)
        cur = pathmod.parent(op.path) if op.path else ()
        if prev is not None:
            total += 1
            if prev == cur or prev == op.path or cur == ():
                same += 1
        per_client[op.client_id] = cur
    assert same / total > 0.5  # Floyd/Ellis-style locality


def test_shared_tree_fraction():
    spec = GeneralWorkloadSpec(shared_tree_prob=0.2)
    ns, wl, clients, ops = sample_ops(4000, spec=spec)
    shared = sum(1 for op in ops if op.path[:1] == ("usr",))
    assert 0.10 < shared / len(ops) < 0.35


def test_zero_shared_tree():
    spec = GeneralWorkloadSpec(shared_tree_prob=0.0)
    ns, wl, clients, ops = sample_ops(2000, spec=spec)
    assert not any(op.path[:1] == ("usr",) for op in ops)


def test_readdir_triggers_stat_burst():
    ns, wl, clients, ops = sample_ops(5000)
    burst_hits = 0
    readdirs = 0
    by_client = {}
    for op in ops:
        seq = by_client.setdefault(op.client_id, [])
        seq.append(op)
    for seq in by_client.values():
        for i, op in enumerate(seq[:-1]):
            if op.op is OpType.READDIR:
                readdirs += 1
                if seq[i + 1].op is OpType.STAT and \
                        pathmod.parent(seq[i + 1].path) == op.path:
                    burst_hits += 1
    assert readdirs > 10
    assert burst_hits / readdirs > 0.8


def test_creates_use_unique_names():
    ns, wl, clients, ops = sample_ops(5000)
    created = [op.path for op in ops
               if op.op in (OpType.CREATE, OpType.MKDIR)]
    assert len(created) == len(set(created))


def test_deterministic_generation():
    _, _, _, a = sample_ops(500, seed=5)
    _, _, _, b = sample_ops(500, seed=5)
    assert [(o.op, o.path) for o in a] == [(o.op, o.path) for o in b]
