"""Unit tests for per-node statistics."""

import pytest

from repro.mds.stats import (NodeStats, aggregate_forward_fraction,
                             aggregate_hit_rate)


def test_initial_state():
    stats = NodeStats()
    assert stats.ops_served == 0
    assert stats.hit_rate == 0.0
    assert stats.lookups == 0
    assert stats.throughput(0.0, 1.0) == 0.0


def test_record_served_feeds_time_series():
    stats = NodeStats(bucket_width_s=0.1)
    for t in (0.05, 0.15, 0.17):
        stats.record_served(t)
    assert stats.ops_served == 3
    assert stats.throughput(0.0, 0.2) == pytest.approx(15.0)
    assert stats.throughput(0.1, 0.2) == pytest.approx(20.0)


def test_throughput_empty_window():
    stats = NodeStats()
    assert stats.throughput(1.0, 1.0) == 0.0
    assert stats.throughput(2.0, 1.0) == 0.0


def test_hit_rate():
    stats = NodeStats()
    for _ in range(8):
        stats.record_hit()
    for _ in range(2):
        stats.record_miss()
    assert stats.lookups == 10
    assert stats.hit_rate == pytest.approx(0.8)


def test_forwards_tracked_separately():
    stats = NodeStats(bucket_width_s=0.1)
    stats.record_forward(0.05)
    stats.record_served(0.05)
    assert stats.forwards == 1
    assert stats.forwards_by_time.total == 1
    assert stats.served_by_time.total == 1


def test_deltas_snapshot():
    stats = NodeStats()
    stats.record_served(0.0)
    stats.record_miss()
    deltas = stats.deltas.snapshot()
    assert deltas == {"served": 1.0, "misses": 1.0}
    assert stats.deltas.snapshot() == {"served": 0.0, "misses": 0.0}


def test_aggregate_hit_rate():
    a, b = NodeStats(), NodeStats()
    for _ in range(3):
        a.record_hit()
    a.record_miss()
    b.record_hit()
    assert aggregate_hit_rate([a, b]) == pytest.approx(4 / 5)
    assert aggregate_hit_rate([NodeStats()]) == 0.0


def test_aggregate_forward_fraction():
    a, b = NodeStats(), NodeStats()
    a.record_served(0.0)
    a.record_served(0.1)
    b.record_forward(0.1)
    assert aggregate_forward_fraction([a, b]) == pytest.approx(1 / 3)
    assert aggregate_forward_fraction([NodeStats()]) == 0.0
