"""Tests for Lazy Hybrid's background update propagation (§3.1.3)."""

import pytest

from repro.mds import OpType, SimParams

from .conftest import make_cluster, run_request

BIG_TREE = {
    "proj": {f"f{i:03d}": 1 for i in range(60)},
    "other": {"x": 1},
}


def test_pop_pending_batch():
    env, ns, cluster = make_cluster("LazyHybrid", tree=BIG_TREE)
    strategy = cluster.strategy
    run_request(env, cluster, OpType.CHMOD, "/proj", mode=0o700,
                dest=0, dir_hint=True)
    owed = strategy.pending_count
    assert owed == 60
    batch = strategy.pop_pending_batch(10)
    assert len(batch) == 10
    assert strategy.pending_count == owed - 10
    assert strategy.pop_pending_batch(0) == []
    assert len(strategy.pop_pending_batch(1000)) == owed - 10
    assert strategy.pending_count == 0


def test_drainer_runs_only_for_lazyhybrid():
    env, ns, cluster = make_cluster(
        "DynamicSubtree", params=SimParams(lh_drain_rate_per_s=100.0))
    # just verify startup didn't crash and the sim advances
    env.run(until=0.5)


def test_background_drain_clears_backlog():
    env, ns, cluster = make_cluster(
        "LazyHybrid", tree=BIG_TREE,
        params=SimParams(lh_drain_rate_per_s=200.0))
    run_request(env, cluster, OpType.CHMOD, "/proj", mode=0o700, dest=0,
                dir_hint=True)
    strategy = cluster.strategy
    assert strategy.pending_count == 60
    env.run(until=env.now + 1.0)  # 200/s drain clears 60 well within 1s
    assert strategy.pending_count == 0
    applied = sum(n.stats.lazy_updates for n in cluster.nodes)
    assert applied >= 55  # a few may have been deleted/invalid


def test_no_drain_without_rate():
    env, ns, cluster = make_cluster("LazyHybrid", tree=BIG_TREE)
    run_request(env, cluster, OpType.CHMOD, "/proj", mode=0o700, dest=0,
                dir_hint=True)
    strategy = cluster.strategy
    backlog = strategy.pending_count
    env.run(until=env.now + 1.0)
    assert strategy.pending_count == backlog  # only access consumes


def test_backlog_diverges_when_updates_outpace_drain():
    # the paper's precondition: updates must be applied faster than created
    env, ns, cluster = make_cluster(
        "LazyHybrid", tree=BIG_TREE,
        params=SimParams(lh_drain_rate_per_s=10.0))
    strategy = cluster.strategy

    # one dir chmod per 0.2s creates 60 updates/0.2s = 300/s >> 10/s drain
    for i in range(5):
        run_request(env, cluster, OpType.CHMOD, "/proj",
                    mode=0o700 if i % 2 else 0o755, dest=0, dir_hint=True)
        env.run(until=env.now + 0.2)
    assert strategy.pending_count > 30  # backlog did not converge


def test_drained_records_do_not_charge_on_access():
    env, ns, cluster = make_cluster(
        "LazyHybrid", tree=BIG_TREE,
        params=SimParams(lh_drain_rate_per_s=500.0))
    run_request(env, cluster, OpType.CHMOD, "/proj", mode=0o700, dest=0,
                dir_hint=True)
    env.run(until=env.now + 0.5)  # drained
    assert cluster.strategy.pending_count == 0
    before = sum(n.stats.lazy_updates for n in cluster.nodes)
    reply = run_request(env, cluster, OpType.OPEN, "/proj/f000")
    assert reply.ok
    # the access consumed no deferred update (it was already propagated)
    after = sum(n.stats.lazy_updates for n in cluster.nodes)
    assert after == before
