"""Shared fixtures for MDS-layer tests."""

import pytest

from repro.mds import MdsCluster, MdsRequest, OpType, SimParams
from repro.namespace import Namespace, build_tree
from repro.namespace import path as p
from repro.partition import make_strategy
from repro.sim import Environment

TREE = {
    "home": {
        "alice": {"src": {"main.c": 50, "util.c": 30}, "notes.txt": 10},
        "bob": {"doc": {"thesis.tex": 100}},
    },
    "usr": {"pkg0": {"bin0": 70, "bin1": 80}},
}


def make_cluster(strategy_name="DynamicSubtree", n_mds=3, params=None,
                 tree=TREE):
    env = Environment()
    ns = Namespace()
    build_tree(ns, tree)
    strat = make_strategy(strategy_name, n_mds)
    strat.bind(ns)
    cluster = MdsCluster(env, ns, strat, params or SimParams())
    cluster.start()
    return env, ns, cluster


def run_request(env, cluster, op, path_text, dest=None, **kw):
    """Submit one request and run the sim until its reply arrives."""
    path = p.parse(path_text)
    req = MdsRequest(op=op, path=path, client_id=0, **kw)
    if dest is None:
        target = cluster.ns.try_resolve(path)
        if target is not None:
            dest = cluster.strategy.authority_of_ino(target.ino)
        else:
            dest = 0
    done = cluster.submit(dest, req)
    return env.run(until=done)


@pytest.fixture
def dynamic_cluster():
    return make_cluster("DynamicSubtree")
