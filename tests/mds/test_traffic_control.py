"""Tests for popularity-driven replication / traffic control (§4.4)."""

import dataclasses

import pytest

from repro.mds import ANY_NODE, OpType, SimParams
from repro.namespace import path as p

from .conftest import make_cluster, run_request


def hot_params(**kw):
    base = dict(replicate_threshold=5.0, unreplicate_threshold=1.0,
                popularity_halflife_s=10.0)
    base.update(kw)
    return SimParams(**base)


def test_hot_file_gets_replicated_everywhere():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3,
                                    params=hot_params())
    target = "/usr/pkg0/bin0"
    for _ in range(8):
        run_request(env, cluster, OpType.OPEN, target)
    ino = ns.resolve(p.parse(target)).ino
    assert ino in cluster.hot_inos
    for node in cluster.nodes:
        assert ino in node.cache


def test_replica_serves_reads_locally_after_replication():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3,
                                    params=hot_params())
    target = "/usr/pkg0/bin0"
    for _ in range(8):
        run_request(env, cluster, OpType.OPEN, target)
    ino = ns.resolve(p.parse(target)).ino
    authority = cluster.strategy.authority_of_ino(ino)
    other = (authority + 1) % 3
    reply = run_request(env, cluster, OpType.OPEN, target, dest=other)
    assert reply.ok
    assert reply.served_by == other
    assert reply.forwarded == 0


def test_hot_item_advertised_as_any_node():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3,
                                    params=hot_params())
    target = "/usr/pkg0/bin0"
    reply = None
    for _ in range(8):
        reply = run_request(env, cluster, OpType.OPEN, target)
    assert reply.locations[p.parse(target)] == ANY_NODE


def test_mutation_on_hot_item_still_goes_to_authority():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3,
                                    params=hot_params())
    target = "/usr/pkg0/bin0"
    for _ in range(8):
        run_request(env, cluster, OpType.OPEN, target)
    ino = ns.resolve(p.parse(target)).ino
    authority = cluster.strategy.authority_of_ino(ino)
    other = (authority + 1) % 3
    reply = run_request(env, cluster, OpType.SETATTR, target, dest=other,
                        size=5)
    assert reply.ok
    assert reply.served_by == authority
    assert reply.forwarded == 1


def test_setattr_uses_distributed_update_keeping_replicas():
    # monotonic size/mtime updates are distributable (GPFS-style, §4.2):
    # they do not tear down the replica set
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3,
                                    params=hot_params())
    target = "/usr/pkg0/bin0"
    for _ in range(8):
        run_request(env, cluster, OpType.OPEN, target)
    ino = ns.resolve(p.parse(target)).ino
    run_request(env, cluster, OpType.SETATTR, target, size=5)
    assert ino in cluster.hot_inos


def test_mutation_sends_invalidation_callbacks():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3,
                                    params=hot_params())
    target = "/usr/pkg0/bin0"
    for _ in range(8):
        run_request(env, cluster, OpType.OPEN, target)
    ino = ns.resolve(p.parse(target)).ino
    authority = cluster.strategy.authority_of_ino(ino)
    auth_node = cluster.nodes[authority]
    assert auth_node.replicas.is_replicated(ino)
    run_request(env, cluster, OpType.CHMOD, target, mode=0o600)
    # the authority called back every replica holder before mutating, and a
    # cooldown embargo prevents immediate replicate/invalidate churn
    assert auth_node.stats.invalidations_sent >= 2
    assert ino not in cluster.hot_inos
    reply = run_request(env, cluster, OpType.OPEN, target)
    assert ino not in cluster.hot_inos  # still within the cooldown window
    # once the embargo lapses and popularity persists, replication resumes
    env.run(until=env.now + 50.0)
    for _ in range(8):
        run_request(env, cluster, OpType.OPEN, target)
    assert ino in cluster.hot_inos
    # (authority may have moved meanwhile: count pushes cluster-wide)
    assert sum(n.stats.replications_pushed for n in cluster.nodes) >= 2


def test_no_traffic_control_for_static_strategy():
    env, ns, cluster = make_cluster("StaticSubtree", n_mds=3,
                                    params=hot_params())
    assert not cluster.traffic_control_active
    target = "/usr/pkg0/bin0"
    for _ in range(10):
        run_request(env, cluster, OpType.OPEN, target)
    assert not cluster.hot_inos


def test_traffic_control_disable_flag():
    env, ns, cluster = make_cluster(
        "DynamicSubtree", n_mds=3,
        params=hot_params(traffic_control=False))
    assert not cluster.traffic_control_active
    for _ in range(10):
        run_request(env, cluster, OpType.OPEN, "/usr/pkg0/bin0")
    assert not cluster.hot_inos


def test_hot_set_sweeper_cools_idle_items():
    env, ns, cluster = make_cluster(
        "DynamicSubtree", n_mds=3,
        params=hot_params(popularity_halflife_s=0.2))
    target = "/usr/pkg0/bin0"
    for _ in range(8):
        run_request(env, cluster, OpType.OPEN, target)
    ino = ns.resolve(p.parse(target)).ino
    assert ino in cluster.hot_inos
    env.run(until=env.now + 5.0)  # let popularity decay and sweeper run
    assert ino not in cluster.hot_inos
