"""Tests for SimParams validation."""

import pytest

from repro.mds import MdsCluster, SimParams
from repro.namespace import Namespace, build_tree
from repro.partition import make_strategy
from repro.sim import Environment


def test_defaults_validate():
    assert SimParams().validate() is not None


def test_negative_latency_rejected():
    with pytest.raises(ValueError, match="cpu_op_s"):
        SimParams(cpu_op_s=-0.001).validate()


def test_zero_capacity_rejected():
    with pytest.raises(ValueError, match="cache_capacity"):
        SimParams(cache_capacity=0).validate()
    with pytest.raises(ValueError, match="workers_per_node"):
        SimParams(workers_per_node=0).validate()


def test_inverted_traffic_thresholds_rejected():
    with pytest.raises(ValueError, match="oscillate"):
        SimParams(replicate_threshold=10.0,
                  unreplicate_threshold=20.0).validate()


def test_inverted_dirfrag_thresholds_rejected():
    with pytest.raises(ValueError, match="dirfrag"):
        SimParams(dirfrag_size_threshold=10,
                  dirfrag_unfrag_size=10).validate()


def test_bad_speed_factors_rejected():
    with pytest.raises(ValueError):
        SimParams(node_speed_factors=(1.0, 0.0)).validate()


def test_max_forward_hops_floor():
    with pytest.raises(ValueError, match="max_forward_hops"):
        SimParams(max_forward_hops=0).validate()


def test_cluster_construction_validates():
    env = Environment()
    ns = Namespace()
    build_tree(ns, {"a": {"f": 1}})
    strat = make_strategy("DynamicSubtree", 2)
    with pytest.raises(ValueError):
        MdsCluster(env, ns, strat, SimParams(net_hop_s=-1.0))
