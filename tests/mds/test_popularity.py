"""Unit tests for decaying popularity counters."""

import pytest

from repro.mds import DecayCounter, PopularityMap


def test_counter_accumulates():
    c = DecayCounter(halflife_s=1.0)
    assert c.add(0.0) == 1.0
    assert c.add(0.0) == 2.0


def test_counter_halves_per_halflife():
    c = DecayCounter(halflife_s=2.0)
    c.add(0.0, 8.0)
    assert c.read(2.0) == pytest.approx(4.0)
    assert c.read(4.0) == pytest.approx(2.0)
    assert c.read(8.0) == pytest.approx(0.5)


def test_counter_decay_then_add():
    c = DecayCounter(halflife_s=1.0)
    c.add(0.0, 4.0)
    assert c.add(1.0, 1.0) == pytest.approx(3.0)


def test_read_does_not_add():
    c = DecayCounter(halflife_s=1.0)
    c.add(0.0, 2.0)
    c.read(0.5)
    c.read(0.5)
    assert c.read(1.0) == pytest.approx(1.0)


def test_time_never_goes_backwards():
    c = DecayCounter(halflife_s=1.0)
    c.add(5.0, 2.0)
    # reading at an earlier time must not "un-decay"
    assert c.read(3.0) == pytest.approx(2.0)
    assert c.read(6.0) == pytest.approx(1.0)


def test_map_validates_halflife():
    with pytest.raises(ValueError):
        PopularityMap(0.0)


def test_map_tracks_independent_inos():
    pm = PopularityMap(1.0)
    pm.add(1, 0.0, 4.0)
    pm.add(2, 0.0, 1.0)
    assert pm.read(1, 0.0) == pytest.approx(4.0)
    assert pm.read(2, 0.0) == pytest.approx(1.0)
    assert pm.read(3, 0.0) == 0.0


def test_map_prune_drops_cold_counters():
    pm = PopularityMap(0.5)
    pm.add(1, 0.0, 1.0)
    pm.add(2, 0.0, 1000.0)
    removed = pm.prune(now=10.0)
    assert removed >= 1
    assert pm.read(2, 10.0) < 1.0 or 2 in pm._counters
    assert len(pm) <= 1
