"""Message-type invariants: the shared empty-locations mapping and the
cluster-wide distribution-info memo behind it."""

import pytest

from repro.mds import MdsRequest, OpType
from repro.mds.messages import ANY_NODE, EMPTY_LOCATIONS, MdsReply
from repro.namespace import path as p

from .conftest import make_cluster, run_request


def test_replies_share_one_immutable_empty_locations():
    """A reply without hints carries the shared read-only mapping — no
    fresh dict per reply, and no way to corrupt a neighbour's view."""
    r1 = MdsReply(ok=True, served_by=0, op=OpType.STAT, path=p.parse("/x"))
    r2 = MdsReply(ok=False, served_by=1, op=OpType.OPEN, path=p.parse("/y"))
    assert r1.locations is EMPTY_LOCATIONS
    assert r2.locations is EMPTY_LOCATIONS
    assert len(EMPTY_LOCATIONS) == 0
    with pytest.raises(TypeError):
        r1.locations[p.parse("/x")] = 3  # mappingproxy: read-only


def test_empty_locations_survive_real_replies():
    """Served requests that need no hints reuse the singleton end to end."""
    env, ns, cluster = make_cluster()
    reply = run_request(env, cluster, OpType.STAT, "/home/alice/notes.txt")
    assert reply.ok
    # DynamicSubtree clients cannot compute locations, so hints are present
    assert reply.locations is not EMPTY_LOCATIONS
    assert reply.locations[()] == ANY_NODE


def test_distribution_info_memo_hits_and_invalidates():
    """With the fast lane on, identical reply hints come from one shared
    mapping; hot-set, partition, and structure changes invalidate it —
    precisely, for the walks the change can actually affect."""
    env, ns, cluster = make_cluster()
    node = cluster.nodes[0]
    path = p.parse("/home/alice/src/main.c")
    first = node._distribution_info(path)
    second = node._distribution_info(path)
    assert first is second  # memo hit: the same mapping object

    src_ino = ns.resolve(p.parse("/home/alice/src")).ino
    cluster._dist_memo.invalidate_ino(src_ino)  # hot toggle on the walk
    third = node._distribution_info(path)
    assert third is not second
    assert third == second  # same content: nothing actually moved

    ns.mkdir(p.parse("/home/alice/newdir"), mode=0o755, owner=0, mtime=0.0)
    fourth = node._distribution_info(path)
    assert fourth is third  # complete walk: a new dentry cannot change it

    cluster.strategy._authority_changed()
    fifth = node._distribution_info(path)
    assert fifth is not fourth  # partition generation bumped: full clear

    ns.unlink(p.parse("/home/alice/src/main.c"))
    sixth = node._distribution_info(path)
    assert sixth is not fifth  # namespace reported the structural change
    assert len(sixth) < len(fifth)  # the walk now ends early
    cluster._dist_memo.verify_invariants()


def test_truncated_distribution_walk_revalidates_on_creation():
    """A memoised walk that ended early (unresolvable component) must be
    recomputed once a creation could extend it — the staleness hole that
    ``dentry_add_epoch`` exists to close."""
    env, ns, cluster = make_cluster()
    node = cluster.nodes[0]
    path = p.parse("/home/alice/newdir/readme")
    short = node._distribution_info(path)
    assert len(short) < len(path) + 1  # walk stopped early
    assert short is node._distribution_info(path)  # memo hit while truncated

    ns.mkdir(p.parse("/home/alice/newdir"), mode=0o755, owner=0, mtime=0.0)
    extended = node._distribution_info(path)
    assert extended is not short
    assert len(extended) == len(short) + 1  # one more component resolved


def test_hot_set_mutations_invalidate_only_affected_walks():
    """Dropping a hot item invalidates exactly the memoised walks that
    pass through it; unrelated paths keep their entries."""
    env, ns, cluster = make_cluster()
    node = cluster.nodes[0]
    ino = ns.resolve(p.parse("/usr/pkg0/bin0")).ino
    cluster.hot_inos.add(ino)
    node.replicas.register(ino, 1)

    through = node._distribution_info(p.parse("/usr/pkg0/bin0"))
    unrelated = node._distribution_info(p.parse("/home/alice/notes.txt"))

    def drop():
        yield from node._invalidate_replicas(ino)

    env.run(until=env.process(drop()))
    assert ino not in cluster.hot_inos
    assert node._distribution_info(p.parse("/usr/pkg0/bin0")) is not through
    assert node._distribution_info(
        p.parse("/home/alice/notes.txt")) is unrelated
    cluster._dist_memo.verify_invariants()
