"""Tests for dynamic directory fragmentation (§4.3)."""

import dataclasses

import pytest

from repro.mds import DirFragManager, OpType, SimParams
from repro.namespace import path as p

from .conftest import make_cluster, run_request


def frag_params(**kw):
    base = dict(dirfrag_enabled=True, dirfrag_size_threshold=20,
                dirfrag_unfrag_size=5)
    base.update(kw)
    return SimParams(**base)


def giant_tree(n=30):
    return {"data": {f"f{i:03d}": 1 for i in range(n)}, "small": {"x": 1}}


def test_requires_dynamic_strategy():
    env, ns, cluster = make_cluster("StaticSubtree", params=frag_params())
    with pytest.raises(TypeError):
        DirFragManager(cluster)


def test_scan_fragments_giant_directory():
    env, ns, cluster = make_cluster("DynamicSubtree", params=frag_params(),
                                    tree=giant_tree(30))
    manager = DirFragManager(cluster)
    manager.scan_once()
    data = ns.resolve(p.parse("/data")).ino
    small = ns.resolve(p.parse("/small")).ino
    assert data in cluster.strategy.fragmented
    assert small not in cluster.strategy.fragmented
    assert manager.fragmented_count == 1


def test_fragmented_dir_entries_scatter():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=4,
                                    params=frag_params(),
                                    tree=giant_tree(40))
    DirFragManager(cluster).scan_once()
    data = ns.resolve(p.parse("/data"))
    owners = {cluster.strategy.authority_of_ino(i)
              for i in data.children.values()}
    assert len(owners) > 1


def test_scan_consolidates_shrunken_directory():
    env, ns, cluster = make_cluster("DynamicSubtree", params=frag_params(),
                                    tree=giant_tree(30))
    manager = DirFragManager(cluster)
    manager.scan_once()
    data_path = p.parse("/data")
    data = ns.resolve(data_path).ino
    assert data in cluster.strategy.fragmented
    # shrink it below the unfrag threshold
    for name in list(ns.readdir(data_path))[4:]:
        ns.unlink(data_path + (name,))
    manager.scan_once()
    assert data not in cluster.strategy.fragmented
    assert manager.consolidated_count == 1


def test_scan_consolidates_deleted_directory():
    env, ns, cluster = make_cluster("DynamicSubtree", params=frag_params(),
                                    tree=giant_tree(30))
    manager = DirFragManager(cluster)
    manager.scan_once()
    data_path = p.parse("/data")
    data = ns.resolve(data_path).ino
    for name in list(ns.readdir(data_path)):
        ns.unlink(data_path + (name,))
    ns.unlink(data_path)
    manager.scan_once()
    assert data not in cluster.strategy.fragmented


def test_cluster_starts_manager_when_enabled():
    env, ns, cluster = make_cluster("DynamicSubtree", params=frag_params(),
                                    tree=giant_tree(25))
    assert cluster.dirfrag is not None
    env.run(until=1.5)  # one scan interval
    data = ns.resolve(p.parse("/data")).ino
    assert data in cluster.strategy.fragmented


def test_requests_to_fragmented_dir_spread_over_nodes():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=4,
                                    params=frag_params(),
                                    tree=giant_tree(40))
    DirFragManager(cluster).scan_once()
    served_by = set()
    for i in range(12):
        reply = run_request(env, cluster, OpType.STAT, f"/data/f{i:03d}")
        assert reply.ok
        served_by.add(reply.served_by)
    assert len(served_by) > 1


def test_readdir_on_fragmented_dir_pays_gather_cost():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=4,
                                    params=frag_params(),
                                    tree=giant_tree(40))
    run_request(env, cluster, OpType.READDIR, "/data")  # warm the cache
    plain = run_request(env, cluster, OpType.READDIR, "/data")
    DirFragManager(cluster).scan_once()
    fragged = run_request(env, cluster, OpType.READDIR, "/data")
    # the gather adds a parallel round trip on top of the warm path
    assert fragged.latency_s >= (plain.latency_s
                                 + 2 * cluster.params.net_hop_s - 1e-9)


def test_creates_in_fragmented_dir_follow_name_hash():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=4,
                                    params=frag_params(),
                                    tree=giant_tree(40))
    DirFragManager(cluster).scan_once()
    owners = set()
    for i in range(8):
        reply = run_request(env, cluster, OpType.CREATE, f"/data/new{i}")
        assert reply.ok
        owners.add(reply.served_by)
    assert len(owners) > 1
