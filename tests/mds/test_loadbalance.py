"""Tests for the heartbeat load balancer (§4.3)."""

import pytest

from repro.mds import LoadBalancer, OpType
from repro.namespace import path as p

from .conftest import make_cluster, run_request

BIG_TREE = {
    "home": {
        f"u{i}": {"src": {f"f{j}.c": 10 for j in range(6)},
                  "doc": {f"d{j}.txt": 5 for j in range(4)}}
        for i in range(8)
    },
}


def test_balancer_requires_dynamic_strategy():
    env, ns, cluster = make_cluster("StaticSubtree")
    with pytest.raises(TypeError):
        LoadBalancer(cluster)


def test_measure_loads_reflects_recent_activity():
    env, ns, cluster = make_cluster("DynamicSubtree", tree=BIG_TREE)
    balancer = LoadBalancer(cluster)
    target = "/home/u0/src/f0.c"
    ino = ns.resolve(p.parse(target)).ino
    authority = cluster.strategy.authority_of_ino(ino)
    for _ in range(10):
        run_request(env, cluster, OpType.STAT, target)
    loads = balancer.measure_loads()
    assert loads[authority] > 0
    assert loads[authority] == max(loads)
    # deltas reset: a second immediate measurement sees nothing new
    assert sum(balancer.measure_loads()) == pytest.approx(
        sum(25.0 * len(n.inbox) for n in cluster.nodes))


def test_select_subtrees_prefers_popular():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=2, tree=BIG_TREE)
    balancer = LoadBalancer(cluster)
    # heat up exactly one user subtree
    hot = "/home/u0/src/f0.c"
    ino = ns.resolve(p.parse(hot)).ino
    busy = cluster.strategy.authority_of_ino(ino)
    for _ in range(50):
        run_request(env, cluster, OpType.STAT, hot)
    picks = balancer.select_subtrees(busy, excess_fraction=0.5)
    assert picks
    u0 = ns.resolve(p.parse("/home/u0")).ino
    src = ns.resolve(p.parse("/home/u0/src")).ino
    assert any(pick in (u0, src) for pick in picks)


def test_select_subtrees_skips_oversize_candidate():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=2, tree=BIG_TREE)
    balancer = LoadBalancer(cluster)
    hot = "/home/u0/src/f0.c"
    ino = ns.resolve(p.parse(hot)).ino
    busy = cluster.strategy.authority_of_ino(ino)
    for _ in range(50):
        run_request(env, cluster, OpType.STAT, hot)
    # tiny excess: the whole hot tree is far larger than needed, so the
    # balancer must split off something finer instead
    picks = balancer.select_subtrees(busy, excess_fraction=0.05)
    u0 = ns.resolve(p.parse("/home/u0")).ino
    assert u0 not in picks


def test_rebalance_noop_when_balanced():
    env, ns, cluster = make_cluster("DynamicSubtree", tree=BIG_TREE)
    balancer = LoadBalancer(cluster)

    def body():
        yield from balancer.rebalance_round()

    env.run(until=env.process(body()))
    assert balancer.migrations == 0


def test_rebalance_moves_hot_subtree_to_idle_node():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3,
                                    tree=BIG_TREE)
    balancer = LoadBalancer(cluster)
    hot = "/home/u0/src/f0.c"
    ino = ns.resolve(p.parse(hot)).ino
    busy = cluster.strategy.authority_of_ino(ino)
    # hammer several subtrees owned by the busy node so one can move
    for sub in ns.inode(ns.resolve(p.parse("/home")).ino).children:
        path = f"/home/{sub}/src/f0.c"
        target = ns.try_resolve(p.parse(path))
        if target is None:
            continue
        if cluster.strategy.authority_of_ino(target.ino) == busy:
            for _ in range(40):
                run_request(env, cluster, OpType.STAT, path)

    def body():
        yield from balancer.rebalance_round()

    env.run(until=env.process(body()))
    assert balancer.migrations >= 1
    # everything the busy node shed went to previously less-busy nodes
    for node_id, subtrees in balancer.imported.items():
        assert node_id != busy
        for subtree in subtrees:
            assert cluster.strategy.authority_of_ino(subtree) == node_id


def test_moved_subtree_respects_cooldown():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=2,
                                    tree=BIG_TREE)
    balancer = LoadBalancer(cluster)
    u0 = ns.resolve(p.parse("/home/u0")).ino
    balancer._last_moved[u0] = env.now
    busy = cluster.strategy.authority_of_ino(u0)
    for _ in range(60):
        run_request(env, cluster, OpType.STAT, "/home/u0/src/f0.c")
    picks = balancer.select_subtrees(busy, excess_fraction=0.9)
    assert u0 not in picks


def test_balancer_runs_periodically():
    env, ns, cluster = make_cluster("DynamicSubtree", tree=BIG_TREE)
    # cluster.start() already launched its own balancer; drive a fresh one
    balancer = LoadBalancer(cluster)
    env.process(balancer.run())
    env.run(until=cluster.params.balance_interval_s * 3.5)
    assert balancer.rounds == 3
