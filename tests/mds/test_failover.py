"""Tests for MDS failure, takeover, and journal-warmed recovery."""

import pytest

from repro.mds import OpType, fail_node, recover_node, warm_from_journal
from repro.namespace import path as p

from .conftest import make_cluster, run_request


def drive(env, gen):
    result = {}

    def body():
        result["value"] = yield from gen

    env.run(until=env.process(body()))
    return result["value"]


def test_failover_requires_dynamic_strategy():
    env, ns, cluster = make_cluster("StaticSubtree")
    with pytest.raises(TypeError):
        fail_node(cluster, 0)


def test_fail_node_reassigns_all_delegations():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3)
    victim = 0
    owned_before = cluster.strategy.subtrees_of(victim)
    reassigned = fail_node(cluster, victim)
    assert set(reassigned) == set(owned_before)
    assert cluster.strategy.subtrees_of(victim) == []
    for node in ns.iter_subtree(1):
        assert cluster.strategy.authority_of_ino(node.ino) != victim


def test_fail_node_with_standby_takes_everything():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3)
    owned = set(cluster.strategy.subtrees_of(0))
    fail_node(cluster, 0, standby=2)
    for subtree in owned:
        assert cluster.strategy.authority_of_ino(subtree) == 2


def test_fail_node_twice_rejected():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3)
    fail_node(cluster, 0)
    with pytest.raises(RuntimeError):
        fail_node(cluster, 0)


def test_cannot_fail_last_node():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=2)
    fail_node(cluster, 0)
    with pytest.raises(RuntimeError):
        fail_node(cluster, 1)


def test_standby_must_be_live():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3)
    fail_node(cluster, 1)
    with pytest.raises(ValueError):
        fail_node(cluster, 0, standby=1)


def test_requests_survive_a_failure():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3)
    target = "/home/alice/notes.txt"
    ino = ns.resolve(p.parse(target)).ino
    victim = cluster.strategy.authority_of_ino(ino)
    run_request(env, cluster, OpType.OPEN, target)  # warm, learn
    fail_node(cluster, victim)
    # a client with stale knowledge still addresses the dead node:
    reply = run_request(env, cluster, OpType.OPEN, target, dest=victim)
    assert reply.ok
    assert reply.served_by != victim
    assert reply.forwarded >= 1


def test_failed_node_state_is_dropped():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3)
    run_request(env, cluster, OpType.OPEN, "/home/alice/notes.txt")
    victim = cluster.strategy.authority_of_ino(
        ns.resolve(p.parse("/home/alice/notes.txt")).ino)
    assert len(cluster.nodes[victim].cache) > 0
    fail_node(cluster, victim)
    assert len(cluster.nodes[victim].cache) == 0
    assert len(cluster.nodes[victim].replicas) == 0


def test_journal_survives_failure_and_warms_takeover():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3)
    # mutate through the victim so its journal fills
    target = "/home/alice/notes.txt"
    ino = ns.resolve(p.parse(target)).ino
    victim = cluster.strategy.authority_of_ino(ino)
    for i in range(5):
        run_request(env, cluster, OpType.SETATTR, target, size=i + 1)
    assert ino in cluster.nodes[victim].journal
    fail_node(cluster, victim, standby=(victim + 1) % 3)
    standby = cluster.nodes[(victim + 1) % 3]
    loaded = drive(env, warm_from_journal(cluster, victim,
                                          standby.node_id))
    assert loaded >= 1
    assert ino in standby.cache
    assert not standby.cache.get(ino, touch=False).replica


def test_warm_recovery_preloads_cache():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3)
    target = "/home/alice/notes.txt"
    ino = ns.resolve(p.parse(target)).ino
    victim = cluster.strategy.authority_of_ino(ino)
    for i in range(3):
        run_request(env, cluster, OpType.SETATTR, target, size=i + 1)
    fail_node(cluster, victim)
    loaded = drive(env, recover_node(cluster, victim, warm=True))
    node = cluster.nodes[victim]
    assert not node.failed
    assert loaded >= 1
    assert len(node.cache) > 1  # root + warmed entries


def test_cold_recovery_starts_empty():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3)
    run_request(env, cluster, OpType.SETATTR, "/home/alice/notes.txt",
                size=9)
    victim = cluster.strategy.authority_of_ino(
        ns.resolve(p.parse("/home/alice/notes.txt")).ino)
    fail_node(cluster, victim)
    loaded = drive(env, recover_node(cluster, victim, warm=False))
    assert loaded == 0
    assert len(cluster.nodes[victim].cache) == 1  # just the root


def test_recover_unfailed_node_rejected():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3)
    with pytest.raises(RuntimeError):
        drive(env, recover_node(cluster, 0))


def test_service_continues_through_fail_and_recover():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3)
    fail_node(cluster, 1)
    reply = run_request(env, cluster, OpType.STAT, "/home/bob/doc/thesis.tex")
    assert reply.ok
    drive(env, recover_node(cluster, 1))
    reply = run_request(env, cluster, OpType.STAT, "/usr/pkg0/bin0")
    assert reply.ok
