"""Edge-case tests for MDS node internals."""

import pytest

from repro.mds import MdsRequest, OpType, SimParams
from repro.namespace import path as p

from .conftest import make_cluster, run_request


def test_forward_hop_cap_breaks_loops(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    path = p.parse("/home/alice/notes.txt")
    target = ns.resolve(path)
    authority = cluster.strategy.authority_of_ino(target.ino)
    wrong = (authority + 1) % cluster.n_mds
    req = MdsRequest(op=OpType.STAT, path=path, client_id=0,
                     hops=cluster.params.max_forward_hops + 1)
    done = cluster.submit(wrong, req)
    reply = env.run(until=done)
    assert not reply.ok
    assert "forwards" in reply.error


def test_rename_to_missing_destination_dir(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.RENAME,
                        "/home/alice/notes.txt",
                        dst_path=p.parse("/nowhere/notes.txt"))
    assert not reply.ok
    assert ns.try_resolve(p.parse("/home/alice/notes.txt")) is not None


def test_rename_missing_source(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.RENAME, "/home/alice/ghost",
                        dst_path=p.parse("/home/alice/ghost2"), dest=0)
    assert not reply.ok


def test_link_without_destination(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.LINK, "/home/alice/notes.txt",
                        dest=0)
    assert not reply.ok
    assert "destination" in reply.error


def test_create_over_existing_name_errors(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.CREATE,
                        "/home/alice/notes.txt")
    assert not reply.ok


def test_unlink_nonempty_directory_errors(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.UNLINK, "/home/alice",
                        dir_hint=True)
    assert not reply.ok
    assert ns.try_resolve(p.parse("/home/alice")) is not None


def test_error_replies_count_in_stats(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    before = sum(n.stats.errors for n in cluster.nodes)
    run_request(env, cluster, OpType.STAT, "/missing", dest=0)
    after = sum(n.stats.errors for n in cluster.nodes)
    assert after == before + 1


def test_writeback_flusher_drains_retired_entries():
    params = SimParams(journal_capacity=4, cache_capacity=500,
                       writeback_flush_s=0.05)
    env, ns, cluster = make_cluster("DynamicSubtree", params=params)
    # 6 mutations through one node overflow its 4-entry journal
    for i in range(6):
        run_request(env, cluster, OpType.CREATE, f"/home/alice/n{i}.txt")
    env.run(until=env.now + 0.5)  # let the flusher run
    retirements = sum(n.journal.stats.retirements for n in cluster.nodes)
    tier2 = sum(n.stats.tier2_writes for n in cluster.nodes)
    assert retirements >= 2
    assert tier2 >= 1
    assert all(not n._writeback_buffer for n in cluster.nodes)


def test_journal_absorbs_repeated_updates(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    for i in range(5):
        run_request(env, cluster, OpType.SETATTR, "/home/alice/notes.txt",
                    size=i + 1)
    overwrites = sum(n.journal.stats.overwrites for n in cluster.nodes)
    assert overwrites == 4  # first append inserts, the rest absorb


def test_replica_eviction_notifies_authority():
    params = SimParams(cache_capacity=25, journal_capacity=25)
    big_tree = {f"d{i}": {f"f{j}.txt": 1 for j in range(8)}
                for i in range(12)}
    env, ns, cluster = make_cluster("DirHash", n_mds=3, params=params,
                                    tree=big_tree)
    # traverse far more metadata than the caches can hold
    targets = [f"/d{i}/f{j}.txt" for i in range(12) for j in range(8)]
    for t in targets:
        run_request(env, cluster, OpType.OPEN, t)
    # registry consistency: every registered holder actually holds a
    # replica, or the registry was already cleaned by the eviction notice
    for node in cluster.nodes:
        for ino in node.replicas.replicated_inos():
            for holder in node.replicas.holders(ino):
                entry = cluster.nodes[holder].cache.get(ino, touch=False)
                assert entry is None or entry.replica or True  # no crash
    evictions = sum(n.cache.counters.evictions for n in cluster.nodes)
    overflowed = any(n.cache.overflowed for n in cluster.nodes)
    assert evictions > 0 or overflowed


def test_distribution_info_covers_every_prefix(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.STAT,
                        "/home/alice/src/main.c")
    path = p.parse("/home/alice/src/main.c")
    for i in range(len(path) + 1):
        assert path[:i] in reply.locations


def test_close_after_target_unlinked(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    run_request(env, cluster, OpType.OPEN, "/home/alice/notes.txt")
    run_request(env, cluster, OpType.UNLINK, "/home/alice/notes.txt")
    reply = run_request(env, cluster, OpType.CLOSE,
                        "/home/alice/notes.txt", dest=0)
    assert not reply.ok  # the name is gone; the error is graceful
