"""Bounded MDS inboxes: admission control sheds load explicitly."""

import pytest

from repro._fastpath import FASTPATH_ENV
from repro.experiments import ExperimentConfig, OpenLoopSpec, build_simulation
from repro.mds import SimParams
from repro.mds.messages import OVERLOAD_ERROR


def overloaded_cfg(inbox, rate=9000.0):
    spec = OpenLoopSpec(kind="general", rate_ops_per_s=rate, sources=8)
    return ExperimentConfig(
        n_mds=2, scale=0.25, workload=spec, warmup_s=0.2, duration_s=0.4,
        cache_capacity_per_mds=2000,
        params=SimParams(inbox_capacity=inbox))


def run(cfg):
    sim = build_simulation(cfg)
    sim.run_to(cfg.run_until_s)
    return sim


def test_bounded_inbox_sheds_excess_load():
    summary = run(overloaded_cfg(inbox=8)).summary()
    assert summary.dropped_ops > 0
    # node-side drop counters and client-side drop counters agree
    assert summary.offered_ops > summary.dropped_ops


def test_client_and_node_drop_counters_agree():
    sim = run(overloaded_cfg(inbox=8))
    node_drops = sum(s.drops for s in sim.cluster.node_stats())
    client_drops = sum(c.stats.dropped for c in sim.clients)
    # every shed request produced exactly one overload reply; a handful
    # may still be in flight to the client when the run ends
    assert node_drops >= client_drops > 0
    assert node_drops - client_drops < 50


def test_unbounded_inbox_never_drops():
    summary = run(overloaded_cfg(inbox=None)).summary()
    assert summary.dropped_ops == 0


def test_tighter_inbox_drops_more():
    # under sustained overload the shed rate is roughly offered minus
    # service rate whatever the queue depth, so compare a tight inbox
    # against one deep enough to swallow the whole run's backlog
    tight = run(overloaded_cfg(inbox=4)).summary()
    loose = run(overloaded_cfg(inbox=4096)).summary()
    assert tight.dropped_ops > loose.dropped_ops
    assert loose.dropped_ops == 0


def test_drop_reply_carries_overload_error():
    sim = run(overloaded_cfg(inbox=4))
    dropped = sum(c.stats.dropped for c in sim.clients)
    errors = sum(c.stats.errors for c in sim.clients)
    assert dropped > 0
    # drops are not counted as client errors: they are deliberate sheds
    # recognised by OVERLOAD_ERROR, kept out of the error/latency books
    assert OVERLOAD_ERROR  # marker string exists and is non-empty
    assert errors < dropped


@pytest.mark.parametrize("fastpath", ["0", "1"])
def test_admission_is_fastpath_invariant(fastpath, monkeypatch):
    # the drop decision reads the dispatch-time inflight counter, never
    # the inbox deque, so both kernel modes shed the same requests
    monkeypatch.setenv(FASTPATH_ENV, fastpath)
    summary = run(overloaded_cfg(inbox=8)).summary()
    monkeypatch.setenv(FASTPATH_ENV, "0" if fastpath == "1" else "1")
    other = run(overloaded_cfg(inbox=8)).summary()
    assert repr(summary) == repr(other)
    assert summary.dropped_ops == other.dropped_ops
