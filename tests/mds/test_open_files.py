"""Tests for open-file handles and unlinked-while-open orphans (§4.5)."""

import pytest

from repro.mds import MdsRequest, OpType
from repro.namespace import path as p

from .conftest import make_cluster, run_request


def open_file(env, cluster, text):
    reply = run_request(env, cluster, OpType.OPEN, text)
    assert reply.ok
    return reply


def close_file(env, cluster, text, ino, dest=None):
    return run_request(env, cluster, OpType.CLOSE, text, ino=ino, dest=dest)


def test_open_reply_carries_handle(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = open_file(env, cluster, "/home/alice/notes.txt")
    assert reply.target_ino == ns.resolve(
        p.parse("/home/alice/notes.txt")).ino


def test_open_pins_and_close_unpins(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = open_file(env, cluster, "/home/alice/notes.txt")
    node = cluster.nodes[reply.served_by]
    ino = reply.target_ino
    assert node.open_file_count == 1
    assert node.cache.get(ino, touch=False).external_pins == 1
    close_file(env, cluster, "/home/alice/notes.txt", ino)
    assert node.open_file_count == 0
    assert node.cache.get(ino, touch=False).external_pins == 0


def test_refcounted_opens(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    r1 = open_file(env, cluster, "/home/alice/notes.txt")
    open_file(env, cluster, "/home/alice/notes.txt")
    node = cluster.nodes[r1.served_by]
    ino = r1.target_ino
    assert node._open_refs[ino] == 2
    close_file(env, cluster, "/home/alice/notes.txt", ino)
    assert node._open_refs[ino] == 1
    assert node.cache.get(ino, touch=False).external_pins == 1


def test_unlink_while_open_retains_orphan(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = open_file(env, cluster, "/home/alice/notes.txt")
    ino = reply.target_ino
    unlink = run_request(env, cluster, OpType.UNLINK,
                         "/home/alice/notes.txt")
    assert unlink.ok
    # unreachable by name...
    assert ns.try_resolve(p.parse("/home/alice/notes.txt")) is None
    # ...but retained by handle
    assert ns.is_orphan(ino)
    assert ino in ns
    assert ino in cluster.orphan_authorities


def test_close_releases_orphan(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = open_file(env, cluster, "/home/alice/notes.txt")
    ino = reply.target_ino
    run_request(env, cluster, OpType.UNLINK, "/home/alice/notes.txt")
    close = close_file(env, cluster, "/home/alice/notes.txt", ino)
    assert close.ok
    assert not ns.is_orphan(ino)
    assert ino not in ns
    assert ino not in cluster.orphan_authorities
    ns.verify_invariants()


def test_orphan_survives_until_last_close(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = open_file(env, cluster, "/home/alice/notes.txt")
    open_file(env, cluster, "/home/alice/notes.txt")
    ino = reply.target_ino
    run_request(env, cluster, OpType.UNLINK, "/home/alice/notes.txt")
    close_file(env, cluster, "/home/alice/notes.txt", ino)
    assert ns.is_orphan(ino)  # one handle still live
    close_file(env, cluster, "/home/alice/notes.txt", ino)
    assert ino not in ns


def test_unlink_without_open_deletes_immediately(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    ino = ns.resolve(p.parse("/home/alice/notes.txt")).ino
    run_request(env, cluster, OpType.UNLINK, "/home/alice/notes.txt")
    assert ino not in ns
    assert not cluster.orphan_authorities


def test_close_without_handle_errors_gracefully(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.CLOSE, "/home/alice/ghost",
                        ino=99999, dest=0)
    assert not reply.ok


def test_hardlinked_file_not_orphaned_by_one_unlink(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    run_request(env, cluster, OpType.LINK, "/home/alice/notes.txt",
                dst_path=p.parse("/home/bob/alias.txt"))
    reply = open_file(env, cluster, "/home/alice/notes.txt")
    ino = reply.target_ino
    run_request(env, cluster, OpType.UNLINK, "/home/alice/notes.txt")
    # another link survives: not an orphan, still resolvable
    assert not ns.is_orphan(ino)
    assert ns.resolve(p.parse("/home/bob/alias.txt")).ino == ino
    ns.verify_invariants()


def test_failover_reclaims_victims_orphans(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    from repro.mds import fail_node
    reply = open_file(env, cluster, "/home/alice/notes.txt")
    ino = reply.target_ino
    victim = reply.served_by
    run_request(env, cluster, OpType.UNLINK, "/home/alice/notes.txt")
    assert ns.is_orphan(ino)
    fail_node(cluster, victim)
    # the crashed node's open handles are gone; its orphans are reclaimed
    assert ino not in ns
    assert ino not in cluster.orphan_authorities
    ns.verify_invariants()
