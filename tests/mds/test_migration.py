"""Tests for subtree authority migration (§4.3)."""

import pytest

from repro.mds import OpType, migrate_subtree
from repro.namespace import path as p

from .conftest import make_cluster, run_request


def warm(env, cluster, paths):
    for text in paths:
        run_request(env, cluster, OpType.OPEN, text)


def run_migration(env, cluster, subtree_ino, src, dst):
    result = {}

    def body():
        moved = yield from migrate_subtree(cluster, subtree_ino, src, dst)
        result["moved"] = moved

    env.run(until=env.process(body()))
    return result["moved"]


def test_migration_moves_authority_and_cache():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3)
    warm(env, cluster, ["/home/alice/src/main.c", "/home/alice/notes.txt"])
    alice = ns.resolve(p.parse("/home/alice")).ino
    src = cluster.strategy.authority_of_ino(alice)
    dst = (src + 1) % 3
    moved = run_migration(env, cluster, alice, src, dst)
    assert moved >= 3  # alice, src dir, cached files
    assert cluster.strategy.authority_of_ino(alice) == dst
    # the destination now holds the cached subtree as local metadata
    dst_node = cluster.nodes[dst]
    main_c = ns.resolve(p.parse("/home/alice/src/main.c")).ino
    assert main_c in dst_node.cache
    assert not dst_node.cache.get(main_c).replica
    # the source released its copies
    assert main_c not in cluster.nodes[src].cache


def test_migration_installs_prefix_anchors_at_destination():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3)
    warm(env, cluster, ["/home/alice/src/main.c"])
    alice = ns.resolve(p.parse("/home/alice")).ino
    src = cluster.strategy.authority_of_ino(alice)
    dst = (src + 1) % 3
    run_migration(env, cluster, alice, src, dst)
    dst_node = cluster.nodes[dst]
    home = ns.resolve(p.parse("/home")).ino
    assert home in dst_node.cache  # prefix anchor for the delegation


def test_migration_transfers_popularity():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3)
    warm(env, cluster, ["/home/alice/notes.txt"] * 5)
    alice = ns.resolve(p.parse("/home/alice")).ino
    src = cluster.strategy.authority_of_ino(alice)
    dst = (src + 1) % 3
    before = cluster.nodes[src].popularity.read(alice, env.now)
    assert before > 0
    run_migration(env, cluster, alice, src, dst)
    after = cluster.nodes[dst].popularity.read(alice, env.now)
    assert after == pytest.approx(before, rel=0.2)


def test_migration_costs_time():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3)
    warm(env, cluster, ["/home/alice/src/main.c"])
    alice = ns.resolve(p.parse("/home/alice")).ino
    src = cluster.strategy.authority_of_ino(alice)
    t0 = env.now
    run_migration(env, cluster, alice, src, (src + 1) % 3)
    assert env.now - t0 >= cluster.params.migration_fixed_s


def test_requests_after_migration_get_forwarded_then_served():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3)
    warm(env, cluster, ["/home/alice/notes.txt"])
    alice = ns.resolve(p.parse("/home/alice")).ino
    src = cluster.strategy.authority_of_ino(alice)
    dst = (src + 1) % 3
    run_migration(env, cluster, alice, src, dst)
    # a client that still believes src is authoritative gets forwarded
    reply = run_request(env, cluster, OpType.STAT, "/home/alice/notes.txt",
                        dest=src)
    assert reply.ok
    assert reply.forwarded == 1
    assert reply.served_by == dst


def test_migration_rejects_static_strategy():
    env, ns, cluster = make_cluster("StaticSubtree", n_mds=3)
    alice = ns.resolve(p.parse("/home/alice")).ino
    gen = migrate_subtree(cluster, alice, 0, 1)
    with pytest.raises(TypeError):
        next(gen)


def test_migration_rejects_root_and_self_move():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3)
    with pytest.raises(ValueError):
        next(migrate_subtree(cluster, 1, 0, 1))
    alice = ns.resolve(p.parse("/home/alice")).ino
    with pytest.raises(ValueError):
        next(migrate_subtree(cluster, alice, 0, 0))


def test_migration_transfers_open_handles():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3)
    target = "/home/alice/notes.txt"
    reply = run_request(env, cluster, OpType.OPEN, target)
    ino = ns.resolve(p.parse(target)).ino
    src = reply.served_by
    assert cluster.nodes[src]._open_refs.get(ino) == 1
    alice = ns.resolve(p.parse("/home/alice")).ino
    dst = (src + 1) % 3
    run_migration(env, cluster, alice, src, dst)
    # the handle (and its pin) moved with the authority
    assert ino not in cluster.nodes[src]._open_refs
    assert cluster.nodes[dst]._open_refs.get(ino) == 1
    assert cluster.nodes[dst].cache.get(ino, touch=False).external_pins == 1
    # closing at the new authority releases cleanly
    close = run_request(env, cluster, OpType.CLOSE, target, ino=ino,
                        dest=dst)
    assert close.ok
    assert ino not in cluster.nodes[dst]._open_refs


def test_migration_stats_counters():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3)
    warm(env, cluster, ["/home/alice/notes.txt"])
    alice = ns.resolve(p.parse("/home/alice")).ino
    src = cluster.strategy.authority_of_ino(alice)
    dst = (src + 1) % 3
    run_migration(env, cluster, alice, src, dst)
    assert cluster.nodes[src].stats.migrations_out == 1
    assert cluster.nodes[dst].stats.migrations_in == 1
    assert cluster.nodes[src].stats.entries_migrated > 0
