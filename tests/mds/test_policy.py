"""Tests for balancing policies and heterogeneous clusters (§4.3)."""

import pytest

from repro.mds import (BalancePolicy, LoadBalancer, OpType,
                       PriorityPathsPolicy, SimParams, WeightedNodesPolicy)
from repro.namespace import Namespace, build_tree
from repro.namespace import path as p

from .conftest import make_cluster, run_request

BIG_TREE = {
    "active": {f"u{i}": {"f.txt": 1, "g.txt": 2} for i in range(4)},
    "archive": {f"a{i}": {"old.txt": 1} for i in range(4)},
}


def test_default_policy_is_uniform():
    policy = BalancePolicy()
    ns = Namespace()
    assert policy.node_capacity(0) == 1.0
    assert policy.subtree_weight(ns, 1) == 1.0


def test_weighted_nodes_validation():
    with pytest.raises(ValueError):
        WeightedNodesPolicy([])
    with pytest.raises(ValueError):
        WeightedNodesPolicy([1.0, 0.0])
    policy = WeightedNodesPolicy([1.0, 2.0])
    assert policy.node_capacity(1) == 2.0
    with pytest.raises(IndexError):
        policy.node_capacity(5)


def test_weighted_policy_from_params():
    params = SimParams(node_speed_factors=(1.0, 2.0, 1.0))
    policy = WeightedNodesPolicy.from_params(params, 3)
    assert policy.capacities == (1.0, 2.0, 1.0)
    uniform = WeightedNodesPolicy.from_params(SimParams(), 2)
    assert uniform.capacities == (1.0, 1.0)


def test_speed_factor_validation():
    params = SimParams(node_speed_factors=(1.0, -1.0))
    assert params.speed_of(0) == 1.0
    with pytest.raises(ValueError):
        params.speed_of(1)
    with pytest.raises(IndexError):
        params.speed_of(7)


def test_fast_node_serves_faster():
    params = SimParams(node_speed_factors=(4.0, 1.0, 1.0))
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3,
                                    params=params)
    # warm both, then compare warm service latencies on each node's data
    fast_latencies, slow_latencies = [], []
    for node in ns.iter_subtree(1):
        if not node.is_file:
            continue
        owner = cluster.strategy.authority_of_ino(node.ino)
        path_text = "/" + "/".join(ns.path_of(node.ino))
        run_request(env, cluster, OpType.STAT, path_text)  # warm
        reply = run_request(env, cluster, OpType.STAT, path_text)
        (fast_latencies if owner == 0 else slow_latencies).append(
            reply.latency_s)
    if fast_latencies and slow_latencies:
        assert (sum(fast_latencies) / len(fast_latencies)
                < sum(slow_latencies) / len(slow_latencies))


def test_capacity_normalized_load_measurement():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=2,
                                    tree=BIG_TREE)
    balancer = LoadBalancer(cluster, WeightedNodesPolicy([2.0, 1.0]))
    # equal raw activity on both nodes:
    for node_id in (0, 1):
        for _ in range(10):
            cluster.nodes[node_id].stats.deltas.add("served")
    loads = balancer.measure_loads()
    # node 0 has twice the capacity, so half the normalized load
    assert loads[0] == pytest.approx(loads[1] / 2)


def test_priority_paths_validation():
    ns = Namespace()
    build_tree(ns, BIG_TREE)
    with pytest.raises(ValueError):
        PriorityPathsPolicy(ns, [p.parse("/missing")])
    with pytest.raises(ValueError):
        PriorityPathsPolicy(ns, [p.parse("/active")], boost=0)


def test_priority_weights_cover_subtrees():
    ns = Namespace()
    build_tree(ns, BIG_TREE)
    policy = PriorityPathsPolicy(ns, [p.parse("/active")], boost=4.0,
                                 demoted=[p.parse("/archive")], demote=0.25)
    active_child = ns.resolve(p.parse("/active/u0")).ino
    archive_child = ns.resolve(p.parse("/archive/a0")).ino
    neutral = ns.resolve(p.parse("/active")).ino  # the anchor itself
    assert policy.subtree_weight(ns, active_child) == 4.0
    assert policy.subtree_weight(ns, neutral) == 4.0
    assert policy.subtree_weight(ns, archive_child) == 0.25
    assert policy.subtree_weight(ns, 1) == 1.0  # the root


def test_priority_policy_biases_shedding():
    def picks_with(policy):
        env, ns, cluster = make_cluster("DynamicSubtree", n_mds=2,
                                        tree=BIG_TREE)
        built = policy(ns) if policy else None
        balancer = LoadBalancer(cluster, built)
        strategy = cluster.strategy
        active = ns.resolve(p.parse("/active/u0")).ino
        archive = ns.resolve(p.parse("/archive/a0")).ino
        strategy.delegate(active, 0)
        strategy.delegate(archive, 0)
        node = cluster.nodes[0]
        # identical raw popularity on both subtrees
        node.popularity.add(active, env.now, 100.0)
        node.popularity.add(archive, env.now, 100.0)
        picks = balancer.select_subtrees(0, excess_fraction=0.9)
        return active, archive, picks

    # prioritizing /active sheds the active subtree first...
    active, archive, picks = picks_with(
        lambda ns: PriorityPathsPolicy(ns, [p.parse("/active")], boost=3.0,
                                       demoted=[p.parse("/archive")],
                                       demote=0.05))
    assert active in picks and archive not in picks
    # ...and the mirrored policy sheds the archive subtree first
    active, archive, picks = picks_with(
        lambda ns: PriorityPathsPolicy(ns, [p.parse("/archive")], boost=3.0,
                                       demoted=[p.parse("/active")],
                                       demote=0.05))
    assert archive in picks and active not in picks


def test_cluster_auto_derives_weighted_policy():
    params = SimParams(node_speed_factors=(1.0, 3.0, 1.0))
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3,
                                    params=params)
    assert isinstance(cluster.balancer.policy, WeightedNodesPolicy)
    assert cluster.balancer.policy.capacities == (1.0, 3.0, 1.0)
