"""Functional tests: a single MDS cluster serving individual requests."""

import pytest

from repro.mds import MdsRequest, OpType
from repro.namespace import path as p

from .conftest import make_cluster, run_request


def test_stat_served_by_authority(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.STAT, "/home/alice/notes.txt")
    assert reply.ok
    assert reply.forwarded == 0
    target = ns.resolve(p.parse("/home/alice/notes.txt"))
    assert reply.served_by == cluster.strategy.authority_of_ino(target.ino)


def test_request_to_wrong_node_is_forwarded(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    target = ns.resolve(p.parse("/home/alice/notes.txt"))
    authority = cluster.strategy.authority_of_ino(target.ino)
    wrong = (authority + 1) % cluster.n_mds
    reply = run_request(env, cluster, OpType.STAT, "/home/alice/notes.txt",
                        dest=wrong)
    assert reply.ok
    assert reply.forwarded == 1
    assert reply.served_by == authority
    assert cluster.nodes[wrong].stats.forwards == 1


def test_stat_missing_path_errors(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.STAT, "/home/carol/x.txt",
                        dest=0)
    assert not reply.ok
    assert "no such" in reply.error


def test_serving_populates_cache_with_prefixes(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.OPEN, "/home/alice/src/main.c")
    node = cluster.nodes[reply.served_by]
    for text in ("/home", "/home/alice", "/home/alice/src",
                 "/home/alice/src/main.c"):
        assert ns.resolve(p.parse(text)).ino in node.cache


def test_directory_grain_prefetch_brings_siblings(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.OPEN, "/home/alice/src/main.c")
    node = cluster.nodes[reply.served_by]
    sibling = ns.resolve(p.parse("/home/alice/src/util.c"))
    assert sibling.ino in node.cache


def test_second_access_hits_cache(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    run_request(env, cluster, OpType.OPEN, "/home/alice/notes.txt")
    reads_before = cluster.object_store.total_reads
    reply = run_request(env, cluster, OpType.OPEN, "/home/alice/notes.txt")
    assert cluster.object_store.total_reads == reads_before
    node = cluster.nodes[reply.served_by]
    assert node.stats.cache_hits > 0


def test_create_adds_file_and_journals(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.CREATE, "/home/bob/new.txt",
                        uid=3, size=42)
    assert reply.ok
    inode = ns.resolve(p.parse("/home/bob/new.txt"))
    assert inode.size == 42 and inode.owner == 3
    node = cluster.nodes[reply.served_by]
    assert node.stats.journal_appends == 1
    assert inode.ino in node.journal


def test_create_in_missing_dir_errors(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.CREATE, "/nope/new.txt", dest=0)
    assert not reply.ok


def test_mkdir(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.MKDIR, "/home/alice/newdir")
    assert reply.ok
    assert ns.resolve(p.parse("/home/alice/newdir")).is_dir


def test_unlink_removes_entry(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.UNLINK, "/home/alice/notes.txt")
    assert reply.ok
    assert ns.try_resolve(p.parse("/home/alice/notes.txt")) is None


def test_rename_moves_entry(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.RENAME, "/home/alice/notes.txt",
                        dst_path=p.parse("/home/bob/notes.txt"))
    assert reply.ok
    assert ns.try_resolve(p.parse("/home/bob/notes.txt")) is not None


def test_chmod_applies_mode(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.CHMOD, "/home/alice/notes.txt",
                        mode=0o600)
    assert reply.ok
    assert ns.resolve(p.parse("/home/alice/notes.txt")).mode == 0o600


def test_setattr_updates_size(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.SETATTR,
                        "/home/alice/notes.txt", size=999)
    assert reply.ok
    assert ns.resolve(p.parse("/home/alice/notes.txt")).size == 999


def test_link_creates_second_name(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.LINK, "/home/alice/notes.txt",
                        dst_path=p.parse("/home/bob/alias.txt"))
    assert reply.ok
    assert ns.resolve(p.parse("/home/bob/alias.txt")).nlink == 2
    ns.verify_invariants()


def test_readdir(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.READDIR, "/home/alice")
    assert reply.ok


def test_reply_contains_distribution_info(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.STAT, "/home/alice/notes.txt")
    path = p.parse("/home/alice/notes.txt")
    assert path in reply.locations
    target = ns.resolve(path)
    assert reply.locations[path] == cluster.strategy.authority_of_ino(
        target.ino)
    # prefixes included too; root is advertised as replicated-everywhere
    from repro.mds import ANY_NODE
    assert reply.locations[()] == ANY_NODE


def test_hash_strategy_replies_skip_distribution_info():
    env, ns, cluster = make_cluster("FileHash")
    reply = run_request(env, cluster, OpType.STAT, "/home/alice/notes.txt")
    assert reply.ok
    assert reply.locations == {}


def test_latency_positive_and_bounded(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    reply = run_request(env, cluster, OpType.STAT, "/home/alice/notes.txt")
    assert 0 < reply.latency_s < 1.0


def test_filehash_uses_inode_grain_io():
    env, ns, cluster = make_cluster("FileHash")
    run_request(env, cluster, OpType.OPEN, "/home/alice/src/main.c")
    assert cluster.object_store.stats.inode_reads > 0
    assert cluster.object_store.stats.dir_reads == 0


def test_lazyhybrid_serves_without_prefix_fetches():
    env, ns, cluster = make_cluster("LazyHybrid")
    reply = run_request(env, cluster, OpType.OPEN, "/home/alice/src/main.c")
    assert reply.ok
    node = cluster.nodes[reply.served_by]
    # only the target itself was looked up: exactly one miss, no remote fetch
    assert node.stats.remote_fetches == 0
    assert node.stats.cache_misses == 1


def test_subtree_traversal_fetches_remote_prefixes_as_replicas():
    env, ns, cluster = make_cluster("DirHash", n_mds=4)
    reply = run_request(env, cluster, OpType.OPEN, "/home/alice/src/main.c")
    node = cluster.nodes[reply.served_by]
    # under DirHash the ancestors usually live elsewhere; any that did are
    # now replicas in the serving node's cache
    replicas = [e for e in node.cache.entries() if e.replica]
    if node.stats.remote_fetches:
        assert replicas
    census = node.cache.slot_census()
    assert sum(census.values()) == len(node.cache)
