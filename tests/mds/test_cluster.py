"""Tests for cluster-level plumbing and measurement helpers."""

import pytest

from repro.mds import (MdsCluster, MdsRequest, OpType, READ_ONLY_OPS,
                       MUTATING_OPS, SimParams)
from repro.namespace import Namespace, build_tree
from repro.partition import make_strategy
from repro.sim import Environment

from .conftest import TREE, make_cluster, run_request


def test_op_categories_partition_the_op_space():
    assert READ_ONLY_OPS | MUTATING_OPS == set(OpType)
    assert not READ_ONLY_OPS & MUTATING_OPS
    assert OpType.STAT in READ_ONLY_OPS
    assert OpType.CREATE in MUTATING_OPS


def test_cluster_size_must_match_strategy():
    env = Environment()
    ns = Namespace()
    build_tree(ns, TREE)
    strat = make_strategy("DynamicSubtree", 3)
    strat.bind(ns)
    with pytest.raises(ValueError):
        MdsCluster(env, ns, strat, SimParams(), n_mds=4)


def test_cluster_binds_unbound_strategy():
    env = Environment()
    ns = Namespace()
    build_tree(ns, TREE)
    strat = make_strategy("DynamicSubtree", 3)  # not bound
    cluster = MdsCluster(env, ns, strat)
    assert strat.ns is ns
    assert cluster.n_mds == 3


def test_submit_validates_destination(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    req = MdsRequest(op=OpType.STAT, path=(), client_id=0)
    with pytest.raises(ValueError):
        cluster.submit(99, req)


def test_start_is_idempotent(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    cluster.start()
    cluster.start()  # no duplicate worker storm
    reply = run_request(env, cluster, OpType.STAT, "/home/alice/notes.txt")
    assert reply.ok


def test_osd_pool_scales_with_cluster():
    _env, _ns, small = make_cluster("DynamicSubtree", n_mds=2)
    _env, _ns, large = make_cluster("DynamicSubtree", n_mds=4)
    assert len(large.object_store.osds) == 2 * len(small.object_store.osds)


def test_cache_report_aggregates_all_nodes(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    run_request(env, cluster, OpType.OPEN, "/home/alice/src/main.c")
    report = cluster.cache_report()
    assert set(report) == {"local_prefix", "local_other",
                           "replica_prefix", "replica_other"}
    assert sum(report.values()) == sum(len(n.cache) for n in cluster.nodes)


def test_throughput_helpers(dynamic_cluster):
    env, ns, cluster = dynamic_cluster
    for _ in range(10):
        run_request(env, cluster, OpType.STAT, "/home/alice/notes.txt")
    env.run(until=0.2)  # at least one full stats bucket
    rates = cluster.node_throughputs(0.0, 0.2)
    assert len(rates) == cluster.n_mds
    assert cluster.mean_node_throughput(0.0, 0.2) == pytest.approx(
        sum(rates) / len(rates))
    assert sum(rates) * 0.2 == pytest.approx(10, abs=0.5)


def test_balancer_only_for_dynamic():
    _env, _ns, static = make_cluster("StaticSubtree")
    assert static.balancer is None
    _env, _ns, dynamic = make_cluster("DynamicSubtree")
    assert dynamic.balancer is not None


def test_deferred_work_counter():
    env, ns, cluster = make_cluster("LazyHybrid")
    assert cluster.deferred_work_created == 0
    reply = run_request(env, cluster, OpType.CHMOD, "/home/alice",
                        mode=0o700, dest=0)
    assert reply.ok
    assert cluster.deferred_work_created > 0


def test_pick_live_node_skips_failed():
    env, ns, cluster = make_cluster("DynamicSubtree", n_mds=3)
    from repro.mds import fail_node
    fail_node(cluster, 0)
    for _ in range(20):
        assert cluster.pick_live_node() != 0
