"""End-to-end tracing through a real simulation.

The acceptance bar for the observability subsystem:

* sampling 1.0 — every trace's span durations sum to the client-observed
  latency (spans are disjoint, nothing double-counted or missed);
* sampling 0.0 — zero traces, but latency histograms still populate, and
  the simulated results are bit-identical to a traced run (tracing must
  not perturb event ordering);
* queue-delay percentiles surface in the balancer's load snapshot.
"""

import pytest

from repro.api import ExperimentConfig, build_simulation, run_experiment


def cfg(**kw):
    base = dict(n_mds=4, scale=0.1, warmup_s=0.5, duration_s=2.0, seed=11)
    base.update(kw)
    return ExperimentConfig(**base)


def fingerprint(summary):
    return (summary.total_ops, summary.total_served, summary.total_forwards,
            summary.hit_rate, summary.mean_latency_s)


class TestFullSampling:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(cfg(trace_sample_rate=1.0, trace_buffer=65536))

    def test_every_completed_request_is_traced(self, result):
        assert len(result.traces) == result.summary.total_ops

    def test_span_sum_matches_client_latency(self, result):
        # spans are designed disjoint; any gap/overlap shows up here
        for trace in result.traces:
            assert trace.unaccounted_s == pytest.approx(0.0, abs=1e-9), \
                f"trace {trace.trace_id} ({trace.op}): " \
                f"{trace.by_stage()} vs latency {trace.latency_s}"

    def test_traces_start_with_submit_hop_and_end_with_reply(self, result):
        for trace in result.traces[:200]:
            assert trace.spans[0].name == "net.hop"
            assert trace.spans[-1].name == "net.reply"

    def test_expected_stage_mix_appears(self, result):
        stages = set()
        for trace in result.traces:
            stages.update(span.name for span in trace.spans)
        assert {"net.hop", "node.cpu", "net.reply"} <= stages
        assert "osd.read" in stages          # cold caches miss at first
        assert "journal.append" in stages    # mutations commit

    def test_cache_hits_recorded_as_notes(self, result):
        assert any(t.notes.get("cache.hit") for t in result.traces)

    def test_per_op_percentiles_reported(self, result):
        by_op = result.latency_by_op
        assert "stat" in by_op and "open" in by_op
        for summary in by_op.values():
            assert summary.count > 0
            assert summary.p50_s <= summary.p95_s <= summary.p99_s
        total = sum(s.count for s in by_op.values())
        assert total == result.summary.latency.count


class TestSamplingOff:
    def test_no_traces_but_histograms_populate(self):
        result = run_experiment(cfg(trace_sample_rate=0.0))
        assert result.traces == []
        assert result.summary.latency.count == result.summary.total_ops
        assert result.summary.latency.p99_s > 0

    def test_tracing_does_not_perturb_the_simulation(self):
        # same seed, rates 0.0 and 1.0: identical simulated outcomes
        off = run_experiment(cfg(trace_sample_rate=0.0))
        on = run_experiment(cfg(trace_sample_rate=1.0))
        assert fingerprint(off.summary) == fingerprint(on.summary)

    def test_runs_are_reproducible(self):
        a = run_experiment(cfg())
        b = run_experiment(cfg())
        assert fingerprint(a.summary) == fingerprint(b.summary)


class TestFractionalSampling:
    def test_samples_roughly_the_requested_fraction(self):
        result = run_experiment(cfg(trace_sample_rate=0.2,
                                    trace_buffer=65536))
        total = result.summary.total_ops
        assert 0.1 * total < len(result.traces) < 0.35 * total


class TestQueueDelaySnapshot:
    def test_balancer_snapshot_carries_percentiles(self):
        sim = build_simulation(cfg())
        sim.run_to(2.0)
        snapshot = sim.cluster.balancer.last_snapshot
        assert len(snapshot) == 4
        assert sum(n.queue_delay_samples for n in snapshot) > 0
        for node in snapshot:
            assert node.queue_delay_p50_s <= node.queue_delay_p99_s

    def test_cluster_queue_delay_summaries(self):
        sim = build_simulation(cfg())
        sim.run_to(1.0)
        per_node = sim.cluster.queue_delay_summaries()
        assert len(per_node) == 4
        assert sum(s.count for s in per_node) > 0


class TestJsonlExport:
    def test_run_experiment_exports(self, tmp_path):
        from repro.api import read_jsonl

        path = str(tmp_path / "out.jsonl")
        result = run_experiment(cfg(trace_sample_rate=1.0,
                                    trace_buffer=65536), jsonl_path=path)
        assert result.jsonl_path == path
        back = read_jsonl(path)
        assert len(back) == len(result.traces)
        assert back[0].spans  # spans survive the round trip
