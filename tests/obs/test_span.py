"""Unit tests for spans, traces, sinks and the tracer front-end."""

import pytest

from repro.obs import (JsonlSink, NullSink, RingBufferSink, Span, TeeSink,
                       Trace, Tracer, export_jsonl, read_jsonl)


def make_trace(trace_id=1):
    t = Trace(trace_id=trace_id, op="stat", path="/home/u1/f", client_id=3,
              submitted_at=1.0)
    t.add("net.hop", 1.0, 1.0002, node=0)
    t.add("node.queue", 1.0002, 1.0002, node=0)
    t.add("node.cpu", 1.0002, 1.0005, node=0)
    t.add("osd.read", 1.0005, 1.0105, node=0, detail="dir-grain")
    t.add("net.reply", 1.0105, 1.0107, node=0)
    t.bump("cache.hit", 2)
    t.completed_at = 1.0107
    return t


class TestTraceAccounting:
    def test_latency_is_submit_to_reply(self):
        t = make_trace()
        assert t.latency_s == pytest.approx(0.0107)

    def test_span_sum_covers_latency(self):
        t = make_trace()
        assert t.span_sum_s == pytest.approx(t.latency_s)
        assert t.unaccounted_s == pytest.approx(0.0, abs=1e-12)

    def test_by_stage_totals_per_name(self):
        t = make_trace()
        t.add("net.hop", 1.011, 1.0112)  # second hop
        stages = t.by_stage()
        assert stages["net.hop"] == pytest.approx(0.0004)
        assert stages["osd.read"] == pytest.approx(0.01)

    def test_bump_accumulates_notes(self):
        t = make_trace()
        t.bump("cache.hit")
        assert t.notes["cache.hit"] == 3

    def test_span_duration(self):
        s = Span("x", 2.0, 2.5)
        assert s.duration_s == pytest.approx(0.5)


class TestSerialization:
    def test_round_trip_preserves_everything(self):
        t = make_trace()
        back = Trace.from_dict(t.to_dict())
        assert back.op == t.op
        assert back.client_id == t.client_id
        assert len(back.spans) == len(t.spans)
        assert back.spans[3].detail == "dir-grain"
        assert back.notes == t.notes
        assert back.latency_s == pytest.approx(t.latency_s)

    def test_jsonl_export_and_read(self, tmp_path):
        path = str(tmp_path / "traces.jsonl")
        traces = [make_trace(i) for i in range(5)]
        assert export_jsonl(traces, path) == 5
        back = read_jsonl(path)
        assert [t.trace_id for t in back] == [0, 1, 2, 3, 4]
        assert read_jsonl(path, limit=2)[-1].trace_id == 1

    def test_jsonl_sink_streams(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        with JsonlSink(path) as sink:
            sink.emit(make_trace(1))
            sink.emit(make_trace(2))
        assert sink.emitted == 2
        assert len(read_jsonl(path)) == 2


class TestSinks:
    def test_ring_buffer_keeps_most_recent(self):
        sink = RingBufferSink(capacity=3)
        for i in range(10):
            sink.emit(make_trace(i))
        assert sink.emitted == 10
        assert len(sink) == 3
        assert [t.trace_id for t in sink.traces] == [7, 8, 9]

    def test_ring_buffer_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(0)

    def test_tee_fans_out(self):
        a, b = RingBufferSink(), RingBufferSink()
        TeeSink(a, b).emit(make_trace())
        assert len(a) == 1 and len(b) == 1

    def test_null_sink_discards(self):
        NullSink().emit(make_trace())  # must not raise


class TestTracer:
    def test_rate_zero_never_traces_and_uses_no_rng(self):
        tr = Tracer(sample_rate=0.0, seed=1)
        state = tr._rng.getstate()
        for _ in range(100):
            assert tr.maybe_trace("stat", "/p", 0, 0.0) is None
        assert tr._rng.getstate() == state  # event-order neutrality
        assert not tr.enabled

    def test_rate_one_traces_everything(self):
        tr = Tracer(sample_rate=1.0, sink=RingBufferSink(), seed=1)
        ids = [tr.maybe_trace("stat", "/p", 0, 0.0).trace_id
               for _ in range(10)]
        assert ids == list(range(1, 11))
        assert tr.started == 10

    def test_fractional_rate_is_deterministic(self):
        def decisions(seed):
            tr = Tracer(sample_rate=0.3, seed=seed)
            return [tr.maybe_trace("stat", "/p", 0, 0.0) is not None
                    for _ in range(200)]

        a = decisions(5)
        assert a == decisions(5)
        assert 20 < sum(a) < 120  # roughly 30%
        assert a != decisions(6)

    def test_finish_seals_and_emits(self):
        sink = RingBufferSink()
        tr = Tracer(sample_rate=1.0, sink=sink, seed=0)
        t = tr.maybe_trace("open", "/f", 2, 1.0)
        tr.finish(t, now=1.5, ok=False)
        assert sink.traces[0].completed_at == 1.5
        assert not sink.traces[0].ok
        assert tr.finished == 1

    def test_latency_histograms_always_record(self):
        tr = Tracer(sample_rate=0.0)
        tr.record_latency("stat", 0.001)
        tr.record_latency("stat", 0.002)
        tr.record_latency("open", 0.005)
        summaries = tr.latency_summaries()
        assert summaries["stat"].count == 2
        assert summaries["open"].count == 1
        assert tr.latency_overall.count == 3

    def test_op_enum_values_accepted(self):
        from repro.mds import OpType

        tr = Tracer(sample_rate=1.0, seed=0)
        t = tr.maybe_trace(OpType.STAT, "/p", 0, 0.0)
        assert t.op == OpType.STAT.value

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)


class TestRender:
    def test_timeline_mentions_each_span_and_title(self):
        text = make_trace().render()
        assert "trace 1: stat" in text
        assert "osd.read@0" in text
        assert "net.reply@0" in text
        assert "ms since submit" in text
